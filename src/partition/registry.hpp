// PartitionerRegistry: one type-erased partitioning-strategy API for every
// surface, mirroring the AlgorithmRegistry contract (algorithms/registry.hpp).
//
// The paper's thesis is that the *partitioning* manufactures memory
// locality, yet the contiguous Algorithm-1 split is only one point in the
// strategy space (streaming vertex partitioners — LDG, Fennel — and
// degree-based hashing trade replication factor against balance very
// differently; SNIPPETS.md §2 maps the space).  Strategies therefore are
// not wired into the builder, the CLI, the benches and the fuzzer by hand:
// each strategy's .cpp registers one PartitionerDesc — name, capability
// flags, a typed parameter schema (reusing algorithms::Params) and a
// type-erased run hook that emits a vertex → partition assignment — and
// the surfaces enumerate the registry:
//
//   * graph::GraphBuilder resolves BuildOptions::partitioner by name and
//     composes the emitted assignment into its staged pipeline (a new
//     `assign` stage between order and partition);
//   * ggtool partitioners/run/serve/partition-report dispatch and list
//     generically, with --ppart key=value parsed by the schema;
//   * bench_fig3_replication sweeps the registry into the partitioner ×
//     algorithm locality matrix;
//   * the differential fuzzer draws its partitioner knob from the registry
//     and asserts every entry is exercised.
//
// Registration is self-contained: a static partition::RegisterPartitioner
// token in the strategy's own translation unit (registration.hpp) is the
// only wiring step — adding a strategy touches no dispatch site.  The
// grind OBJECT library (top-level CMakeLists.txt) guarantees the
// registration-only objects are never dropped by the linker.
//
// Composition contract (docs/PARTITIONING.md): a strategy emits an
// arbitrary assignment over the *ordered internal* ID space; the builder
// converts it into a VertexRemap (vertices stably sorted by partition)
// plus contiguous aligned ranges via plan_assignment().  After that the
// partitioning is contiguous again, so the traversal kernels, NUMA
// arenas, PCPM bins and the atomic-free bitmap alignment all work
// unchanged for every strategy — nothing downstream knows assignments
// were ever non-contiguous.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "algorithms/params.hpp"
#include "graph/edge_list.hpp"
#include "graph/reorder.hpp"
#include "partition/partitioner.hpp"
#include "sys/types.hpp"

namespace grind::partition {

/// The baseline strategy every build defaults to (the paper's Algorithm 1
/// contiguous split); guaranteed to be registered.
inline constexpr const char* kContiguousPartitioner = "contiguous";

/// What a strategy needs from its inputs and guarantees about its output.
struct PartitionerCaps {
  /// Single pass over the vertex/edge stream with O(P) or O(V) state —
  /// the class that scales to out-of-core builds (ROADMAP item 2).
  bool streaming = false;
  /// Consumes a degree array (the builder provides it for free; flag is
  /// informational for listings and the out-of-core path).
  bool needs_degrees = false;
  /// Assignment is a pure function of (edge list, P, params) — every
  /// current strategy; prerequisite for the equivalence tests and the
  /// epoch-keyed result cache to stay valid across rebuilds.
  bool deterministic = true;
};

/// Everything the surfaces need to know about one partitioning strategy.
class PartitionerDesc {
 public:
  std::string name;   ///< lookup key ("contiguous", "ldg", "fennel", …)
  std::string title;  ///< one-line human description
  int list_order = 0;  ///< listing position (baseline first)
  PartitionerCaps caps;
  algorithms::ParamSchema schema;

  /// Emit the home partition of every vertex of `el` (ordered internal ID
  /// space): a vector of length el.num_vertices() with values in [0, P).
  /// `opts` carries the build's alignment/balance configuration so the
  /// contiguous baseline can reproduce Algorithm 1 bit-for-bit; streaming
  /// strategies are free to ignore it (the builder re-imposes alignment
  /// when it converts the assignment into contiguous ranges).
  /// `params` is the schema-resolved bag — hooks never re-validate.
  std::function<std::vector<part_t>(
      const graph::EdgeList& el, part_t num_partitions,
      const PartitionOptions& opts, const algorithms::Params& params)>
      run;

  /// Validate + default-fill `params` against the schema — the exact bag a
  /// run with these inputs would see.  Throws std::invalid_argument /
  /// std::out_of_range naming the offending key.
  [[nodiscard]] algorithms::Params resolve(
      const algorithms::Params& params) const {
    return schema.resolve(params);
  }
};

/// Process-wide registry of self-registered strategies.  Registration
/// happens during static initialisation (single-threaded); lookups after
/// main() starts are lock-free reads.
class PartitionerRegistry {
 public:
  static PartitionerRegistry& instance();

  /// Register one strategy; throws std::logic_error on duplicate names.
  void add(PartitionerDesc desc);

  /// nullptr when no strategy has this name.
  [[nodiscard]] const PartitionerDesc* find(std::string_view name) const;

  /// Throwing lookup (std::invalid_argument names the unknown strategy).
  [[nodiscard]] const PartitionerDesc& at(std::string_view name) const;

  /// All entries, sorted by list_order (baseline first, name tiebreak).
  [[nodiscard]] std::vector<const PartitionerDesc*> entries() const;

  /// Strategy names in listing order.
  [[nodiscard]] std::vector<std::string> names() const;

  [[nodiscard]] std::size_t size() const { return descs_.size(); }

 private:
  PartitionerRegistry() = default;
  // May reallocate while registrations run (static init, before any lookup
  // escapes); pointers from find()/entries() are stable from then on.
  std::vector<PartitionerDesc> descs_;
};

/// The builder-side half of the composition contract: turn an arbitrary
/// assignment into (a) the VertexRemap that stably sorts vertices by home
/// partition — vertices keep their relative order inside a partition, so a
/// monotone assignment (the contiguous baseline) collapses to the identity
/// and costs nothing — and (b) the P contiguous ranges the sorted vertices
/// occupy, with every boundary snapped *up* to a multiple of
/// `boundary_align` (the trailing vertices of partition p+1 that alignment
/// absorbs into p keep the bitmap words single-writer; the quantisation is
/// the same one Algorithm 1 applies to its own boundaries).  The last
/// range always ends at |V|.
struct AssignmentPlan {
  /// Maps pre-assignment internal IDs ↔ post-assignment internal IDs
  /// (identity when the assignment is already monotone non-decreasing).
  graph::VertexRemap remap;
  /// Aligned contiguous ranges over the post-assignment ID space.
  std::vector<VertexRange> ranges;
};

/// Validates the assignment (length n, every value < num_partitions; throws
/// std::invalid_argument otherwise) and builds the plan described above.
AssignmentPlan plan_assignment(const std::vector<part_t>& assignment,
                               part_t num_partitions, vid_t boundary_align);

}  // namespace grind::partition
