#include "partition/replication.hpp"

#include <algorithm>

#include "sys/parallel.hpp"

namespace grind::partition {

std::vector<part_t> replica_counts(const graph::EdgeList& el,
                                  const Partitioning& parts) {
  const vid_t n = el.num_vertices();
  const bool by_dst = parts.options().by == PartitionBy::kDestination;

  // For every (grouping vertex, partition) pair, count it once.  Sort the
  // pairs and count distinct — memory-proportional to |E| but exact.
  std::vector<std::pair<vid_t, part_t>> pairs;
  pairs.reserve(el.num_edges());
  for (const Edge& e : el.edges()) {
    const vid_t group = by_dst ? e.src : e.dst;
    const vid_t homed = by_dst ? e.dst : e.src;
    pairs.emplace_back(group, parts.partition_of(homed));
  }
  parallel_sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

  std::vector<part_t> counts(n, 0);
  for (const auto& [v, p] : pairs) ++counts[v];
  return counts;
}

double replication_factor(const graph::EdgeList& el,
                          const Partitioning& parts) {
  if (el.num_vertices() == 0) return 0.0;
  const auto counts = replica_counts(el, parts);
  std::uint64_t total = 0;
  for (part_t c : counts) total += c;
  return static_cast<double>(total) /
         static_cast<double>(el.num_vertices());
}

double worst_case_replication(const graph::EdgeList& el) {
  if (el.num_vertices() == 0) return 0.0;
  return static_cast<double>(el.num_edges()) /
         static_cast<double>(el.num_vertices());
}

}  // namespace grind::partition
