// Fennel streaming vertex partitioner (Tsourakakis et al., WSDM'14; named
// alongside LDG in ROADMAP item 1 and SNIPPETS.md §2).
//
// Same one-pass shape as LDG, different objective: place each arriving
// vertex into the partition maximising
//
//     |N(v) ∩ P_p|  −  α·γ·|P_p|^(γ−1)
//
// i.e. neighbour affinity minus the marginal cost of growing the
// partition under the Fennel interpolation of edge-cut and balance, with
// α = m·P^(γ−1)/n^γ so the penalty is scale-free.  A hard cap of
// ⌈slack·n/P⌉ vertices bounds the worst case (the ν constraint of the
// paper).  Neighbours count both directions over already-placed vertices;
// ties break to the least-loaded partition, then the smallest index.
#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/csr.hpp"
#include "partition/registration.hpp"
#include "partition/registry.hpp"

namespace grind::partition {
namespace {

PartitionerDesc make_desc() {
  PartitionerDesc d;
  d.name = "fennel";
  d.title = "Fennel streaming: affinity minus power-law balance penalty";
  d.list_order = 50;
  d.caps.streaming = true;
  d.caps.needs_degrees = false;
  d.caps.deterministic = true;
  d.schema = {
      algorithms::spec_real("gamma", "balance-penalty exponent", 1.5, 1.0,
                            4.0),
      algorithms::spec_real(
          "slack", "hard capacity: at most slack*n/P vertices per partition",
          1.1, 1.0, 16.0),
  };
  d.run = [](const graph::EdgeList& el, part_t num_partitions,
             const PartitionOptions&, const algorithms::Params& params) {
    const double gamma = params.get_real("gamma");
    const double slack = params.get_real("slack");
    const vid_t n = el.num_vertices();
    std::vector<part_t> assignment(n);
    if (n == 0) return assignment;

    const graph::Csr out = graph::Csr::build(el, graph::Adjacency::kOut);
    const graph::Csr in = graph::Csr::build(el, graph::Adjacency::kIn);

    const double m = static_cast<double>(el.num_edges());
    const double alpha =
        m * std::pow(static_cast<double>(num_partitions), gamma - 1.0) /
        std::pow(static_cast<double>(n), gamma);
    const vid_t cap = std::max<vid_t>(
        1, static_cast<vid_t>(std::ceil(
               slack * static_cast<double>(n) / num_partitions)));

    std::vector<vid_t> size(num_partitions, 0);
    std::vector<vid_t> nbr_count(num_partitions, 0);
    std::vector<part_t> touched;
    std::vector<unsigned char> placed(n, 0);
    touched.reserve(64);

    for (vid_t v = 0; v < n; ++v) {
      const auto tally = [&](vid_t u) {
        if (!placed[u]) return;
        const part_t p = assignment[u];
        if (nbr_count[p] == 0) touched.push_back(p);
        ++nbr_count[p];
      };
      for (vid_t u : out.neighbors(v)) tally(u);
      for (vid_t u : in.neighbors(v)) tally(u);

      part_t best = num_partitions;  // sentinel: none chosen yet
      double best_score = 0.0;
      for (part_t p = 0; p < num_partitions; ++p) {
        if (size[p] >= cap) continue;
        const double score =
            static_cast<double>(nbr_count[p]) -
            alpha * gamma * std::pow(static_cast<double>(size[p]),
                                     gamma - 1.0);
        if (best == num_partitions || score > best_score ||
            (score == best_score && size[p] < size[best]))
          best = p, best_score = score;
      }
      // cap·P ≥ n by construction, so a slot always exists.
      assignment[v] = best;
      ++size[best];
      placed[v] = 1;

      for (part_t p : touched) nbr_count[p] = 0;
      touched.clear();
    }
    return assignment;
  };
  return d;
}

const RegisterPartitioner kRegisterFennel(make_desc());

}  // namespace
}  // namespace grind::partition
