#include "partition/storage_model.hpp"

#include <cmath>

namespace grind::partition {

std::size_t storage_csr_pruned(const StorageInputs& in, double replication) {
  const double vertex_part =
      replication * static_cast<double>(in.num_vertices) *
      static_cast<double>(in.bytes_edge_index + in.bytes_vertex_id);
  return static_cast<std::size_t>(std::llround(vertex_part)) +
         in.num_edges * in.bytes_vertex_id;
}

std::size_t storage_csr_unpruned(const StorageInputs& in,
                                 std::size_t partitions) {
  return partitions * in.num_vertices * in.bytes_edge_index +
         in.num_edges * in.bytes_vertex_id;
}

std::size_t storage_csc_whole(const StorageInputs& in) {
  return in.num_vertices * in.bytes_edge_index +
         in.num_edges * in.bytes_vertex_id;
}

std::size_t storage_coo(const StorageInputs& in) {
  return 2 * in.num_edges * in.bytes_vertex_id;
}

std::size_t storage_graphgrind_v2(const StorageInputs& in) {
  // Whole CSR + whole CSC + partitioned COO; COO and CSC sizes are
  // independent of the partition count (§III-B).
  return storage_csc_whole(in) /* CSR, same formula */ +
         storage_csc_whole(in) + storage_coo(in);
}

}  // namespace grind::partition
