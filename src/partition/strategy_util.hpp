// Shared helpers for the streaming partitioner strategies (part_*.cpp).
#pragma once

#include <cstdint>

#include "sys/types.hpp"

namespace grind::partition::strategy {

/// splitmix64 finaliser — the standard 64-bit avalanche mix.  Used as the
/// hash for the random / block / DBH strategies so assignments are a pure
/// function of (vertex, seed): deterministic across platforms, no
/// std::hash (whose output is implementation-defined).
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Hash `key` under `seed` into [0, buckets).
inline part_t hash_to_partition(std::uint64_t key, std::uint64_t seed,
                                part_t buckets) {
  return static_cast<part_t>(mix64(key ^ mix64(seed)) % buckets);
}

}  // namespace grind::partition::strategy
