// Greedy balanced partitioning: longest-processing-time (LPT) assignment
// of in-degree mass.  Vertices are visited in descending in-degree order
// (ties by smallest internal ID) and each goes to the partition with the
// least accumulated mass — the classical 4/3-approximation to makespan,
// here minimising the edge imbalance the paper's §III-D metric measures.
// The quality end of the balance axis in the fig3 matrix: near-perfect
// edge balance, locality left entirely to chance.
#include <algorithm>
#include <numeric>
#include <vector>

#include "partition/registration.hpp"
#include "partition/registry.hpp"

namespace grind::partition {
namespace {

PartitionerDesc make_desc() {
  PartitionerDesc d;
  d.name = "greedy";
  d.title = "LPT greedy: descending-degree vertices to least-loaded";
  d.list_order = 60;
  d.caps.streaming = false;  // needs the degree-sorted visit order
  d.caps.needs_degrees = true;
  d.caps.deterministic = true;
  d.run = [](const graph::EdgeList& el, part_t num_partitions,
             const PartitionOptions&, const algorithms::Params&) {
    const vid_t n = el.num_vertices();
    const std::vector<eid_t> deg = el.in_degrees();

    std::vector<vid_t> order(n);
    std::iota(order.begin(), order.end(), vid_t{0});
    std::stable_sort(order.begin(), order.end(), [&](vid_t a, vid_t b) {
      return deg[a] > deg[b];  // stable ⇒ ties keep ascending ID
    });

    std::vector<part_t> assignment(n);
    std::vector<eid_t> load(num_partitions, 0);
    std::vector<vid_t> count(num_partitions, 0);
    for (vid_t v : order) {
      // Least mass; among equals the one with fewer vertices (spreads the
      // zero-degree tail evenly), then the smallest index.
      part_t best = 0;
      for (part_t p = 1; p < num_partitions; ++p)
        if (load[p] < load[best] ||
            (load[p] == load[best] && count[p] < count[best]))
          best = p;
      assignment[v] = best;
      load[best] += deg[v];
      ++count[best];
    }
    return assignment;
  };
  return d;
}

const RegisterPartitioner kRegisterGreedy(make_desc());

}  // namespace
}  // namespace grind::partition
