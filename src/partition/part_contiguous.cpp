// Baseline strategy: the paper's Algorithm 1 contiguous split, exposed
// through the registry so every surface treats it uniformly.
//
// The assignment is exactly what make_partitioning() computes — contiguous
// aligned ranges balancing cumulative in-degree — expanded to per-vertex
// form.  Because it is monotone non-decreasing, plan_assignment() collapses
// the permutation to the identity and re-derives the very same aligned
// boundaries, so a build through the registry path is bit-for-bit the
// pre-registry build (the bench-smoke CI gate asserts this).
#include <vector>

#include "partition/partitioner.hpp"
#include "partition/registration.hpp"
#include "partition/registry.hpp"

namespace grind::partition {
namespace {

PartitionerDesc make_desc() {
  PartitionerDesc d;
  d.name = kContiguousPartitioner;
  d.title = "Algorithm-1 contiguous ranges, edge-balanced (paper baseline)";
  d.list_order = 0;
  d.caps.streaming = false;
  d.caps.needs_degrees = true;
  d.caps.deterministic = true;
  d.run = [](const graph::EdgeList& el, part_t num_partitions,
             const PartitionOptions& opts, const algorithms::Params&) {
    const Partitioning parts = make_partitioning(el, num_partitions, opts);
    std::vector<part_t> assignment(el.num_vertices());
    for (part_t p = 0; p < parts.num_partitions(); ++p) {
      const VertexRange r = parts.range(p);
      for (vid_t v = r.begin; v < r.end; ++v) assignment[v] = p;
    }
    return assignment;
  };
  return d;
}

const RegisterPartitioner kRegisterContiguous(make_desc());

}  // namespace
}  // namespace grind::partition
