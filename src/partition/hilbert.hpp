// Hilbert space-filling curve over the adjacency matrix.
//
// §IV-C evaluates storing COO edges "sorted using a space-filling curve such
// as Hilbert order to improve memory locality" — an edge (src, dst) is a
// point in the |V|×|V| adjacency matrix; visiting edges along the Hilbert
// curve keeps both endpoints' working sets small simultaneously.
//
// Implementation: the classic bit-twiddling xy↔d conversion for a curve of
// `order` levels covering a 2^order × 2^order grid.
#pragma once

#include <cstdint>

#include "sys/types.hpp"

namespace grind::partition {

/// Hilbert index of grid point (x, y) on a curve of 2^order × 2^order cells.
/// order ≤ 32; result fits in 2·order bits.
std::uint64_t hilbert_xy_to_d(std::uint32_t order, std::uint32_t x,
                              std::uint32_t y);

/// Inverse of hilbert_xy_to_d: decode index d into (x, y).
void hilbert_d_to_xy(std::uint32_t order, std::uint64_t d, std::uint32_t& x,
                     std::uint32_t& y);

/// Smallest curve order whose grid covers `n` vertices per side.
std::uint32_t hilbert_order_for(vid_t n);

/// Hilbert key of an edge, treating (src, dst) as matrix coordinates.
inline std::uint64_t hilbert_edge_key(std::uint32_t order, const Edge& e) {
  return hilbert_xy_to_d(order, e.src, e.dst);
}

}  // namespace grind::partition
