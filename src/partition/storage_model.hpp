// Closed-form graph-storage-size model (§II-E, Fig 4).
//
// With r(p) the replication factor of a p-way partitioning, be the bytes per
// edge-list index and bv the bytes per vertex ID:
//
//   CSR, pruned        r(p)·|V|·(be + bv) + |E|·bv     (grows like r(p))
//   CSR, unpruned      p·|V|·be + |E|·bv               (grows linearly in p;
//                                                       Polymer's choice)
//   CSC, whole graph   |V|·be + |E|·bv                 (flat — partitioning
//                                                       by destination keeps
//                                                       CSC unpartitioned)
//   COO                2·|E|·bv                        (flat)
//
// bench_fig4_storage evaluates these curves and cross-checks the pruned-CSR
// formula against bytes actually allocated by PartitionedCsr.
#pragma once

#include <cstddef>

#include "sys/types.hpp"

namespace grind::partition {

/// Inputs common to all storage formulas.
struct StorageInputs {
  std::size_t num_vertices = 0;  ///< |V|
  std::size_t num_edges = 0;     ///< |E|
  std::size_t bytes_vertex_id = kBytesPerVertexId;   ///< bv
  std::size_t bytes_edge_index = kBytesPerEdgeIndex; ///< be
};

/// r(p)·|V|·(be+bv) + |E|·bv.  `replication` is r(p).
std::size_t storage_csr_pruned(const StorageInputs& in, double replication);

/// p·|V|·be + |E|·bv.
std::size_t storage_csr_unpruned(const StorageInputs& in,
                                 std::size_t partitions);

/// |V|·be + |E|·bv.
std::size_t storage_csc_whole(const StorageInputs& in);

/// 2·|E|·bv.
std::size_t storage_coo(const StorageInputs& in);

/// Total footprint of the GraphGrind-v2 composite (§III-B): one whole CSR,
/// one whole CSC, and one partitioned COO — "we store 3 copies" whose sum is
/// "less than double the memory of Ligra" (Ligra stores CSR+CSC).
std::size_t storage_graphgrind_v2(const StorageInputs& in);

}  // namespace grind::partition
