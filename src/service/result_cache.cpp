#include "service/result_cache.hpp"

#include <utility>

namespace grind::service {

std::string ResultCache::encode(const Key& key) {
  // 0x1f (ASCII unit separator) cannot appear in graph names, paper codes
  // or fingerprints, so the concatenation is injective.
  std::string out;
  out.reserve(key.graph.size() + key.algorithm.size() +
              key.fingerprint.size() + 24);
  out += key.graph;
  out += '\x1f';
  out += std::to_string(key.epoch);
  out += '\x1f';
  out += key.algorithm;
  out += '\x1f';
  out += key.fingerprint;
  return out;
}

std::optional<algorithms::AnyResult> ResultCache::get(const Key& key) {
  if (!enabled()) return std::nullopt;
  const std::string encoded = encode(key);
  sys::MutexLock lock(m_);
  auto it = index_.find(encoded);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // touch
  return it->second->value;
}

void ResultCache::put(const Key& key, algorithms::AnyResult value) {
  if (!enabled()) return;
  const std::string encoded = encode(key);
  sys::MutexLock lock(m_);
  auto it = index_.find(encoded);
  if (it != index_.end()) {
    it->second->value = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Node{key.graph, encoded, std::move(value)});
  index_.emplace(std::move(encoded), lru_.begin());
  while (lru_.size() > cfg_.capacity) {
    index_.erase(lru_.back().encoded);
    lru_.pop_back();
    ++evictions_;
  }
}

std::size_t ResultCache::purge_graph(const std::string& name) {
  sys::MutexLock lock(m_);
  std::size_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->graph == name) {
      index_.erase(it->encoded);
      it = lru_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

ResultCache::Stats ResultCache::stats() const {
  sys::MutexLock lock(m_);
  return Stats{hits_, misses_, evictions_, lru_.size()};
}

std::size_t ResultCache::size() const {
  sys::MutexLock lock(m_);
  return lru_.size();
}

}  // namespace grind::service
