#include "service/graph_catalog.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace grind::service {

namespace {

/// Resident-byte estimate from the graph's public shape.  Deliberately
/// coarse (the budget is an admission guard, not an allocator): CSR + CSC
/// offsets per vertex, and per edge the retained edge list, the partitioned
/// COO copy, and one (vid, weight) pair in each of CSR/CSC; the optional
/// partitioned-CSR and PCPM-bin layouts add roughly an edge-array each.
std::size_t approx_graph_bytes(const graph::Graph& g) {
  const auto nv = static_cast<std::size_t>(g.num_vertices());
  const auto ne = static_cast<std::size_t>(g.num_edges());
  std::size_t per_edge = sizeof(Edge)                      // edge list
                         + sizeof(Edge)                    // partitioned COO
                         + 2 * (sizeof(vid_t) + sizeof(weight_t));  // CSR+CSC
  if (g.has_partitioned_csr()) per_edge += sizeof(vid_t) + sizeof(eid_t);
  if (g.has_pcpm_bins()) per_edge += sizeof(vid_t) + sizeof(weight_t);
  const std::size_t per_vertex = 2 * sizeof(eid_t)         // CSR+CSC offsets
                                 + 2 * sizeof(vid_t);      // remap both ways
  return nv * per_vertex + ne * per_edge;
}

}  // namespace

GraphCatalog::Handle GraphCatalog::load(const std::string& name,
                                        graph::Graph g) {
  if (name.empty())
    throw std::invalid_argument("GraphCatalog: graph name must be non-empty");
  const std::size_t bytes = approx_graph_bytes(g);
  const vid_t source =
      g.num_vertices() > 0 ? g.max_out_degree_source() : kInvalidVertex;
  auto owned = std::make_unique<graph::Graph>(std::move(g));

  sys::MutexLock lock(m_);
  // Reserve the bytes *before* attaching the releasing deleter: a refused
  // load must not run a deleter that returns bytes it never held.
  {
    sys::MutexLock ledger_lock(ledger_->m);
    if (cfg_.byte_budget != 0 && ledger_->bytes + bytes > cfg_.byte_budget)
      throw std::runtime_error(
          "GraphCatalog: loading '" + name + "' (" + std::to_string(bytes) +
          " bytes) would exceed the byte budget (" +
          std::to_string(ledger_->bytes) + " of " +
          std::to_string(cfg_.byte_budget) + " resident); evict first");
    ledger_->bytes += bytes;
  }
  // The deleter returns the bytes to the ledger when the last pin drops —
  // eviction "defers" by construction, and the accounting follows the
  // memory, not the catalog entry (which may outlive the catalog itself).
  std::shared_ptr<Ledger> ledger = ledger_;
  std::shared_ptr<const graph::Graph> shared(
      owned.release(),
      [ledger, bytes](const graph::Graph* p) {
        delete p;
        sys::MutexLock lock(ledger->m);
        ledger->bytes -= bytes;
      });
  auto entry = Handle(new Entry(name, ++next_epoch_, std::move(shared), bytes,
                                source));
  for (Handle& h : entries_) {
    if (h->name() == name) {
      h = std::move(entry);  // old entry lives on through query pins
      return h;
    }
  }
  entries_.push_back(std::move(entry));
  return entries_.back();
}

GraphCatalog::EvictOutcome GraphCatalog::evict(const std::string& name) {
  sys::MutexLock lock(m_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if ((*it)->name() != name) continue;
    // use_count is exact here: we hold the only catalog reference under the
    // catalog lock, so any count above 1 is an outstanding query pin.
    const bool pinned = it->use_count() > 1;
    entries_.erase(it);  // unlink either way: new lookups must miss
    return pinned ? EvictOutcome::kDeferred : EvictOutcome::kEvicted;
  }
  return EvictOutcome::kNotFound;
}

GraphCatalog::Handle GraphCatalog::find(const std::string& name) const {
  sys::MutexLock lock(m_);
  for (const Handle& h : entries_)
    if (h->name() == name) return h;
  return nullptr;
}

std::uint64_t GraphCatalog::bump_epoch(const std::string& name) {
  sys::MutexLock lock(m_);
  for (Handle& h : entries_) {
    if (h->name() != name) continue;
    // Same shared Graph (no bytes change hands), fresh epoch.
    h = Handle(new Entry(h->name(), ++next_epoch_, h->graph_, h->bytes(),
                         h->default_source()));
    return h->epoch();
  }
  return 0;
}

std::vector<GraphCatalog::Info> GraphCatalog::list() const {
  std::vector<Info> out;
  {
    sys::MutexLock lock(m_);
    out.reserve(entries_.size());
    for (const Handle& h : entries_) {
      Info info;
      info.name = h->name();
      info.epoch = h->epoch();
      info.bytes = h->bytes();
      info.pins = static_cast<std::size_t>(
          std::max<long>(0, h.use_count() - 1));
      info.num_vertices = h->graph().num_vertices();
      info.num_edges = h->graph().num_edges();
      out.push_back(std::move(info));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Info& a, const Info& b) { return a.name < b.name; });
  return out;
}

std::size_t GraphCatalog::resident_bytes() const {
  sys::MutexLock lock(ledger_->m);
  return ledger_->bytes;
}

std::size_t GraphCatalog::size() const {
  sys::MutexLock lock(m_);
  return entries_.size();
}

}  // namespace grind::service
