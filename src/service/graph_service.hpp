// GraphService: concurrent query execution over one shared immutable Graph.
//
// The paper's partitioned layouts exist to make *many* traversals over one
// read-only structure cache-friendly; this module supplies the serving
// shape that regime implies.  A GraphService owns
//   * one immutable Graph (all layouts + remap, built once),
//   * a WorkspacePool of TraversalWorkspace instances (lazily grown up to a
//     cap) so concurrent queries never share mutable scratch,
//   * a fixed set of worker threads draining a submission queue.
//
// Queries address algorithms through the AlgorithmRegistry
// (algorithms/registry.hpp): a QueryRequest is just {algorithm code,
// Params}, so every registered workload — including ones registered after
// this file was written — is servable with no dispatch edits here.
// Validation (unknown algorithm, parameter schema, source range) is derived
// from the registered descriptor, never from hand-kept lists.
//
// Thread-safety contract (docs/SERVICE.md):
//   * the Graph is strictly read-only after construction — every layout
//     accessor is const, and all lazily-computable state (partition chunk
//     work lists, the default source) is materialised eagerly at build /
//     service-construction time, never on first traversal;
//   * each in-flight query gets a private Engine (a few words: options +
//     stats + orientation) bound to a workspace leased from the pool, so
//     per-query mutable state is thread-confined;
//   * workers run their queries under a ThreadLimitGuard(threads_per_query),
//     which limits OpenMP parallelism for that thread only — concurrency
//     across queries, not oversubscription within them;
//   * workers are pinned round-robin to the graph's NUMA domains
//     (DomainPinGuard): worker i's home is NumaModel::domain_of_thread(i),
//     so its traversals visit home-domain partitions first and its
//     workspace leases prefer scratch last used on the same domain.
//
// submit() runs one query and returns a future.  run_batch() groups
// same-algorithm requests and splits each group into per-worker slices; a
// slice leases ONE workspace and reuses it (and the resolved default
// source, and warm frontier buffers) across all its queries, amortising
// per-query setup exactly the way the partition-centric literature batches
// many sources over one partitioned structure.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "algorithms/params.hpp"
#include "algorithms/registry.hpp"
#include "engine/options.hpp"
#include "graph/graph.hpp"
#include "service/workspace_pool.hpp"
#include "sys/types.hpp"

namespace grind::service {

/// DEPRECATED compatibility surface (one release): the eight Table-II
/// workloads as a closed enum, from before the AlgorithmRegistry existed.
/// New code addresses algorithms by paper code string; the registry is the
/// single source of truth for names (`AlgorithmRegistry::instance()`).
enum class Algorithm : std::uint8_t {
  kBfs,
  kCc,
  kPageRank,
  kPageRankDelta,
  kBellmanFord,
  kBc,
  kSpmv,
  kBeliefPropagation,
};

/// DEPRECATED: paper code for the enum value; forwards to the registry
/// entry's name.  Use QueryRequest::algorithm / AlgorithmDesc::name.
[[deprecated("address algorithms by paper code string via the "
             "AlgorithmRegistry")]] [[nodiscard]] const char*
algorithm_name(Algorithm a);

/// DEPRECATED: inverse of algorithm_name (std::nullopt on unknown codes).
/// Use AlgorithmRegistry::instance().find(code).
[[deprecated("address algorithms by paper code string via the "
             "AlgorithmRegistry")]] [[nodiscard]] std::optional<Algorithm>
parse_algorithm(std::string_view code);

/// One query: an algorithm paper code (registry lookup key) plus its typed
/// parameters.  Source-taking algorithms read the "source" parameter
/// (original-ID space, like every user-facing boundary); when it is absent
/// the service substitutes its default source (the max-out-degree vertex,
/// resolved once at service construction).  Parameter validation — unknown
/// keys, wrong types, out-of-range values and sources — happens against the
/// registered schema when the query executes, and failures are reported in
/// QueryResult::error.
struct QueryRequest {
  std::string algorithm = "PR";
  algorithms::Params params;

  QueryRequest() = default;
  explicit QueryRequest(std::string algo, algorithms::Params p = {})
      : algorithm(std::move(algo)), params(std::move(p)) {}
  /// DEPRECATED enum shim (one release).
  [[deprecated("construct with the paper code string")]] explicit QueryRequest(
      Algorithm a);
};

struct QueryResult {
  std::string algorithm;          ///< paper code of the executed algorithm
  algorithms::AnyResult value;    ///< empty when the query failed
  double seconds = 0.0;           ///< execution wall-clock (excludes queueing)
  std::string error;              ///< non-empty ⇒ the query failed

  [[nodiscard]] bool ok() const { return error.empty(); }
};

struct ServiceConfig {
  /// Worker threads executing queries (≥ 1).
  std::size_t workers = 4;
  /// WorkspacePool cap; 0 = same as workers (every worker can hold a lease
  /// simultaneously).  A smaller cap throttles concurrency below the worker
  /// count — workers block in acquire() — which the stress tests exercise.
  std::size_t pool_capacity = 0;
  /// OpenMP parallelism per query (ThreadLimitGuard on each worker).  The
  /// throughput default is 1: concurrency across queries, serial inside.
  int threads_per_query = 1;
  /// Engine options applied to every query's private Engine.
  engine::Options engine{};
};

/// Aggregate execution counters (snapshot via GraphService::stats()).
struct ServiceStats {
  std::uint64_t queries_completed = 0;
  std::uint64_t queries_failed = 0;
  std::uint64_t batches = 0;
  double busy_seconds = 0.0;  ///< summed per-query execution time
};

class GraphService {
 public:
  /// Takes ownership of the (already-built) graph.  Resolves the default
  /// source eagerly so no query ever mutates shared state lazily.
  explicit GraphService(graph::Graph g, ServiceConfig cfg = {});
  ~GraphService();

  GraphService(const GraphService&) = delete;
  GraphService& operator=(const GraphService&) = delete;

  /// The shared read-only graph.
  [[nodiscard]] const graph::Graph& graph() const { return graph_; }

  /// Enqueue one query; the future resolves when a worker finishes it.
  /// Query failures are reported in QueryResult::error, not as future
  /// exceptions, so a batch of futures can be drained unconditionally.
  [[nodiscard]] std::future<QueryResult> submit(QueryRequest req);

  /// Execute a batch, grouping same-algorithm requests into per-worker
  /// slices that share one workspace lease each; blocks until every query
  /// finishes and returns results in request order.  Must not be called
  /// from inside a worker (it waits on the same queue it feeds).
  [[nodiscard]] std::vector<QueryResult> run_batch(
      std::vector<QueryRequest> reqs);

  /// Drain the queue and join the workers (idempotent; the destructor calls
  /// it).  Further submit()/run_batch() calls throw.
  void shutdown();

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] const WorkspacePool& pool() const { return pool_; }
  [[nodiscard]] std::size_t num_workers() const { return workers_.size(); }
  /// The source used by source-taking algorithms when the request has no
  /// "source" parameter (original-ID space).
  [[nodiscard]] vid_t default_source() const { return default_source_; }

 private:
  void worker_loop(std::size_t index);
  void enqueue(std::function<void()> job);
  /// Run one query on a leased workspace (no locks held); never throws.
  [[nodiscard]] QueryResult execute(const QueryRequest& req,
                                    engine::TraversalWorkspace& ws) const;
  void record(const QueryResult& r);

  graph::Graph graph_;
  ServiceConfig cfg_;
  vid_t default_source_ = kInvalidVertex;
  WorkspacePool pool_;

  mutable std::mutex queue_m_;
  std::condition_variable queue_cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::mutex shutdown_m_;
  std::vector<std::thread> workers_;

  mutable std::mutex stats_m_;
  ServiceStats stats_;
};

}  // namespace grind::service
