// GraphService: concurrent query execution over shared immutable Graphs.
//
// The paper's partitioned layouts exist to make *many* traversals over one
// read-only structure cache-friendly; this module supplies the serving
// shape that regime implies.  A GraphService owns
//   * a GraphCatalog of named immutable Graphs (all layouts + remap, built
//     once, refcounted and epoch-versioned — see graph_catalog.hpp),
//   * a ResultCache of completed deterministic results keyed by
//     (graph, epoch, algorithm, canonical params fingerprint) — see
//     result_cache.hpp; hits resolve on the submitter's thread without a
//     queue slot or a workspace lease,
//   * a WorkspacePool of TraversalWorkspace instances (lazily grown up to a
//     cap) so concurrent queries never share mutable scratch —
//     TraversalWorkspace is graph-agnostic (buffers keyed by size), so one
//     pool serves every catalog entry,
//   * a fixed set of worker threads draining a submission queue.
//
// Queries address {graph, algorithm, params}: the graph by catalog name
// (empty = the default graph, so single-graph callers never name one), the
// algorithm through the AlgorithmRegistry (algorithms/registry.hpp), so
// every registered workload — including ones registered after this file
// was written — is servable with no dispatch edits here.  Validation
// (unknown graph/algorithm, parameter schema, source range) is derived
// from the catalog and the registered descriptor, never from hand-kept
// lists, and the default source for source-taking algorithms is per-graph
// (resolved once at load).
//
// Robustness contract (docs/SERVICE.md "Query model"):
//   * every future resolves, exactly once, with a structured
//     QueryResult::status — a query can finish (kOk), fail (kError), hit its
//     deadline or an external cancel mid-run (kDeadlineExceeded /
//     kCancelled, with partial progress reported), or be refused under
//     overload (kShed).  No code path hangs a future or throws through it;
//   * deadlines are cooperative: the CancelToken rides engine::Options into
//     every edge-map boundary poll, so all registered algorithms are
//     cancellable with zero per-algorithm edits, and a deadline is honoured
//     within one iteration boundary (one partition sweep for long single
//     iterations);
//   * admission control never blocks the submitter: a full queue sheds
//     immediately (max_queue_depth), a stale queue entry sheds at dequeue
//     (admission_timeout), and a worker waits at most lease_timeout for
//     scratch (try_acquire_until) so it can never wedge on the pool — on
//     the submit path and the run_batch slice path alike (both go through
//     the same acquire_lease helper);
//   * past Overload::queue_watermark queued entries, iterative algorithms'
//     iteration caps are clamped (degrading accuracy before availability);
//     clamped results carry QueryResult::degraded.
//
// Thread-safety contract (docs/SERVICE.md):
//   * the Graph is strictly read-only after construction — every layout
//     accessor is const, and all lazily-computable state (partition chunk
//     work lists, the default source) is materialised eagerly at build /
//     service-construction time, never on first traversal;
//   * each in-flight query gets a private Engine (a few words: options +
//     stats + orientation) bound to a workspace leased from the pool, so
//     per-query mutable state is thread-confined;
//   * workers run their queries under a ThreadLimitGuard(threads_per_query),
//     which limits OpenMP parallelism for that thread only — concurrency
//     across queries, not oversubscription within them;
//   * workers are pinned round-robin to the graph's NUMA domains
//     (DomainPinGuard): worker i's home is NumaModel::domain_of_thread(i),
//     so its traversals visit home-domain partitions first and its
//     workspace leases prefer scratch last used on the same domain.
//
// submit() runs one query and returns a future.  run_batch() groups
// same-algorithm requests and splits each group into per-worker slices; a
// slice leases ONE workspace and reuses it (and the resolved default
// source, and warm frontier buffers) across all its queries, amortising
// per-query setup exactly the way the partition-centric literature batches
// many sources over one partitioned structure.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/params.hpp"
#include "algorithms/registry.hpp"
#include "engine/options.hpp"
#include "graph/graph.hpp"
#include "service/graph_catalog.hpp"
#include "service/result_cache.hpp"
#include "service/workspace_pool.hpp"
#include "sys/cancel.hpp"
#include "sys/thread_safety.hpp"
#include "sys/types.hpp"

namespace grind::service {

/// How a query's future resolved.  Every future resolves with exactly one of
/// these; `error` is non-empty for every status except kOk.
enum class QueryStatus : std::uint8_t {
  kOk = 0,            ///< ran to completion; `value` holds the result
  kError,             ///< validation or execution failure (see `error`)
  kDeadlineExceeded,  ///< deadline hit; partial progress in iterations_done
  kCancelled,         ///< external cancel or service shutdown
  kShed,              ///< refused by admission control; never executed
};

/// Stable lower-case label ("ok", "error", "deadline", "cancelled", "shed").
[[nodiscard]] const char* to_string(QueryStatus s);

/// One query: a catalog graph name, an algorithm paper code (registry
/// lookup key) and its typed parameters.  Source-taking algorithms read the
/// "source" parameter (original-ID space, like every user-facing boundary);
/// when it is absent the service substitutes the *target graph's* default
/// source (its max-out-degree vertex, resolved once at load).  Validation —
/// unknown graph, unknown keys, wrong types, out-of-range values and
/// sources — happens against the catalog and the registered schema at
/// submission, and failures are reported in QueryResult::error.
struct QueryRequest {
  /// Catalog name of the graph to query; empty addresses the default graph
  /// (the one the single-graph constructor loaded), so callers that never
  /// touch the catalog never name a graph.
  std::string graph;
  std::string algorithm = "PR";
  algorithms::Params params;

  /// Per-query deadline measured from submission — it covers queue wait as
  /// well as execution, because a caller's latency budget does not pause
  /// while the query sits in line.  Zero means no deadline.
  std::chrono::milliseconds deadline{0};

  /// Optional external cancellation handle.  Keep a reference and call
  /// request_cancel() to stop the query cooperatively; the service creates
  /// a private token when only a deadline is set.
  std::shared_ptr<sys::CancelToken> cancel;

  QueryRequest() = default;
  explicit QueryRequest(std::string algo, algorithms::Params p = {})
      : algorithm(std::move(algo)), params(std::move(p)) {}
};

struct QueryResult {
  std::string algorithm;          ///< paper code of the executed algorithm
  QueryStatus status = QueryStatus::kOk;
  algorithms::AnyResult value;    ///< empty unless status == kOk
  double seconds = 0.0;           ///< execution wall-clock (excludes queueing)
  double queue_seconds = 0.0;     ///< time spent waiting for a worker
  /// Edge-map sweeps completed before the query finished or was cancelled —
  /// the partial-progress report of a kDeadlineExceeded / kCancelled query.
  int iterations_done = 0;
  /// True when the overload policy clamped this query's iteration cap.
  bool degraded = false;
  /// True when the value came from the result cache — no execution, no
  /// workspace lease; `seconds` and `iterations_done` stay 0.
  bool cached = false;
  std::string error;              ///< non-empty ⇔ status != kOk

  [[nodiscard]] bool ok() const { return status == QueryStatus::kOk; }
};

struct ServiceConfig {
  /// Worker threads executing queries (≥ 1).
  std::size_t workers = 4;
  /// WorkspacePool cap; 0 = same as workers (every worker can hold a lease
  /// simultaneously).  A smaller cap throttles concurrency below the worker
  /// count — workers block in acquire() — which the stress tests exercise.
  std::size_t pool_capacity = 0;
  /// OpenMP parallelism per query (ThreadLimitGuard on each worker).  The
  /// throughput default is 1: concurrency across queries, serial inside.
  int threads_per_query = 1;
  /// Engine options applied to every query's private Engine.
  engine::Options engine{};

  /// Admission control: maximum queued (not yet running) entries before
  /// submit() sheds instead of enqueueing.  0 = unbounded (no shedding).
  std::size_t max_queue_depth = 0;
  /// A queued entry older than this is shed at dequeue instead of executed —
  /// when the tier is saturated, serving a stale query only makes every
  /// queued one later.  0 = disabled.
  std::chrono::milliseconds admission_timeout{0};
  /// Longest a worker waits for a workspace lease before shedding the query
  /// (kShed).  0 = wait indefinitely (bounded in practice by the query's
  /// own deadline, which also caps the wait when set).
  std::chrono::milliseconds lease_timeout{0};

  /// Graceful degradation: when more than `queue_watermark` entries are
  /// queued, iterative algorithms' iteration caps ("iterations",
  /// "max_rounds") are clamped to `max_iterations` — the tier trades
  /// accuracy for availability instead of queueing to death.  Disabled
  /// unless both fields are positive.
  struct Overload {
    std::size_t queue_watermark = 0;
    std::int64_t max_iterations = 0;
  } overload;

  /// GraphCatalog byte budget (estimated resident graph bytes); 0 =
  /// unbounded.  load_graph() throws when a load would exceed it.
  std::size_t catalog_byte_budget = 0;
  /// ResultCache capacity in entries; 0 disables caching (the default —
  /// every query executes, preserving measurement-oriented callers'
  /// expectations).  Only descriptors with caps.deterministic are cached.
  std::size_t result_cache_capacity = 0;
};

/// Aggregate execution counters (snapshot via GraphService::stats()).
/// queries_completed counts every resolved future regardless of status;
/// the per-status counters partition the non-kOk remainder.
struct ServiceStats {
  std::uint64_t queries_completed = 0;
  std::uint64_t queries_failed = 0;             ///< status == kError
  std::uint64_t queries_shed = 0;               ///< status == kShed
  std::uint64_t queries_cancelled = 0;          ///< status == kCancelled
  std::uint64_t queries_deadline_exceeded = 0;  ///< status == kDeadlineExceeded
  std::uint64_t queries_degraded = 0;           ///< overload-clamped queries
  std::uint64_t batches = 0;
  double busy_seconds = 0.0;  ///< summed per-query execution time

  /// Result-cache counters (mirrors ResultCache::Stats): hits resolve
  /// without execution; misses count cache-eligible queries that went on to
  /// run; evictions are capacity pressure only.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;

  /// Per-graph breakdown, keyed by catalog name (the default graph appears
  /// under GraphService::kDefaultGraphName).
  struct PerGraph {
    std::uint64_t queries = 0;     ///< resolved futures addressed here
    std::uint64_t cache_hits = 0;  ///< of which served from cache
  };
  std::map<std::string, PerGraph> per_graph;
};

class GraphService {
 public:
  /// Catalog name the single-graph constructor loads under, and the name
  /// empty QueryRequest::graph resolves to.
  static constexpr const char* kDefaultGraphName = "default";

  /// Takes ownership of the (already-built) graph and loads it as the
  /// default graph.  Resolves its default source eagerly so no query ever
  /// mutates shared state lazily.
  explicit GraphService(graph::Graph g, ServiceConfig cfg = {});
  /// Start with an empty catalog (no default graph): every request must
  /// name a graph loaded via load_graph().
  explicit GraphService(ServiceConfig cfg);
  ~GraphService();

  GraphService(const GraphService&) = delete;
  GraphService& operator=(const GraphService&) = delete;

  /// The default graph (the one the single-graph constructor loaded; it is
  /// pinned for the service's lifetime).  Throws std::logic_error on a
  /// catalog-only service with no default graph.
  [[nodiscard]] const graph::Graph& graph() const;

  /// Load (or replace, bumping the epoch) a named graph.  Returns the new
  /// entry's epoch.  Throws on an empty/invalid name or when the catalog
  /// byte budget would be exceeded.  Thread-safe; callable while queries
  /// are in flight (they keep their pinned entries).
  std::uint64_t load_graph(const std::string& name, graph::Graph g);
  /// Unlink a named graph and purge its cached results.  In-flight queries
  /// keep their pins — see GraphCatalog::EvictOutcome.
  GraphCatalog::EvictOutcome evict_graph(const std::string& name);
  /// Signal that a graph's underlying data changed: installs a fresh epoch
  /// so cached results for the old epoch become unreachable.  Returns the
  /// new epoch, 0 when the name is unknown.
  std::uint64_t bump_epoch(const std::string& name);
  /// Snapshot of resident graphs, sorted by name.
  [[nodiscard]] std::vector<GraphCatalog::Info> list_graphs() const;
  [[nodiscard]] const GraphCatalog& catalog() const { return catalog_; }
  [[nodiscard]] const ResultCache& result_cache() const { return cache_; }

  /// Enqueue one query; the future resolves when a worker finishes it (or
  /// immediately with kShed when the queue is full — submit never blocks on
  /// a saturated tier).  All failures are reported in QueryResult::status,
  /// not as future exceptions, so a batch of futures can be drained
  /// unconditionally.  Throws only after shutdown().
  [[nodiscard]] std::future<QueryResult> submit(QueryRequest req);

  /// Execute a batch, grouping same-algorithm requests into per-worker
  /// slices that share one workspace lease each; blocks until every query
  /// finishes and returns results in request order.  Slices refused by
  /// admission control resolve their queries kShed.  Must not be called
  /// from inside a worker (it waits on the same queue it feeds).
  [[nodiscard]] std::vector<QueryResult> run_batch(
      std::vector<QueryRequest> reqs);

  /// Stop the service: queries still queued resolve kCancelled, in-flight
  /// queries run to completion, blocked pool waits wake, workers join.
  /// Idempotent; the destructor calls it.  Further submit()/run_batch()
  /// calls throw.
  void shutdown() GRIND_EXCLUDES(shutdown_m_, queue_m_);

  [[nodiscard]] ServiceStats stats() const GRIND_EXCLUDES(stats_m_);
  [[nodiscard]] const WorkspacePool& pool() const { return pool_; }
  /// Mutable pool access — robustness tests use it to starve workers by
  /// holding external leases; production callers have no reason to.
  [[nodiscard]] WorkspacePool& pool() { return pool_; }
  [[nodiscard]] std::size_t num_workers() const GRIND_EXCLUDES(shutdown_m_) {
    sys::MutexLock lock(shutdown_m_);
    return workers_.size();
  }
  /// Queued (not yet running) entries right now.
  [[nodiscard]] std::size_t queue_depth() const GRIND_EXCLUDES(queue_m_);
  /// The *default graph's* source for source-taking algorithms when the
  /// request has no "source" parameter (original-ID space); other graphs
  /// use their own (GraphCatalog::Entry::default_source).  kInvalidVertex
  /// on a catalog-only service with no default graph.
  [[nodiscard]] vid_t default_source() const {
    return default_handle_ != nullptr ? default_handle_->default_source()
                                      : kInvalidVertex;
  }

 private:
  using Clock = std::chrono::steady_clock;

  /// Everything resolved about a query before it queues: the registry
  /// descriptor, the pinned catalog entry (held across the queue wait — no
  /// use-after-evict), the schema-resolved parameter bag, and the cache key
  /// when the descriptor is cacheable.
  struct Prepared {
    const algorithms::AlgorithmDesc* desc = nullptr;
    GraphCatalog::Handle entry;
    algorithms::Params resolved;
    bool cacheable = false;
    ResultCache::Key key;
  };

  /// One queue entry.  `run` executes the query; `drop` resolves its
  /// future(s) with a terminal status *without* executing — the path taken
  /// when the entry is shed at dequeue or stolen by shutdown().  Exactly one
  /// of the two is invoked, exactly once.
  struct Job {
    std::function<void()> run;
    std::function<void(QueryStatus, const std::string&)> drop;
    Clock::time_point enqueued;
  };

  void start_workers() GRIND_EXCLUDES(shutdown_m_);
  void worker_loop(std::size_t index) GRIND_EXCLUDES(queue_m_);
  /// False when the queue is full — `job` is left intact so the caller can
  /// invoke its drop handler.  Throws after shutdown.
  [[nodiscard]] bool enqueue(Job&& job) GRIND_EXCLUDES(queue_m_);
  /// Resolve a request end to end on the submitter's thread: catalog
  /// lookup, registry lookup, per-graph default source, schema resolution,
  /// cache probe.  True ⇒ `out` is ready to execute; false ⇒ `*early` is
  /// the terminal result (validation error or cache hit).  Never throws.
  [[nodiscard]] bool prepare(const QueryRequest& req, Prepared* out,
                             QueryResult* early);
  /// Lease a workspace, waiting no longer than the query's deadline and
  /// cfg_.lease_timeout allow (unbounded only when neither is set).  False
  /// ⇒ `*failure` carries the kShed / kDeadlineExceeded / kCancelled /
  /// kError resolution (queue_seconds not yet stamped).  Never throws —
  /// this is the single lease path for run_one AND batch slices, so the
  /// lease-timeout guarantee holds on both.
  [[nodiscard]] bool acquire_lease(
      const std::string& algorithm,
      const std::shared_ptr<sys::CancelToken>& token, Clock::time_point start,
      WorkspacePool::Lease* lease, QueryResult* failure);
  /// Lease a workspace under the query's deadline/lease-timeout bounds and
  /// execute; produces the terminal QueryResult (never throws).
  [[nodiscard]] QueryResult run_one(const Prepared& prep,
                                    const std::shared_ptr<sys::CancelToken>& token,
                                    Clock::time_point enqueued);
  /// Run one prepared query on a leased workspace (no locks held); never
  /// throws.
  [[nodiscard]] QueryResult execute(
      const Prepared& prep,
      const std::shared_ptr<const sys::CancelToken>& token,
      engine::TraversalWorkspace& ws, std::size_t depth_at_start) const;
  /// Insert a finished run into the cache when eligible (cacheable, kOk,
  /// not degraded).
  void maybe_cache(const Prepared& prep, const QueryResult& r);
  /// A terminal result for a query that did not run (shed / cancelled).
  [[nodiscard]] static QueryResult unrun_result(const std::string& algorithm,
                                                QueryStatus status,
                                                std::string why);
  /// The catalog name a request addresses (empty → kDefaultGraphName).
  [[nodiscard]] static const std::string& graph_name_of(
      const QueryRequest& req);
  void record(const QueryResult& r, const std::string& graph_name)
      GRIND_EXCLUDES(stats_m_);

  ServiceConfig cfg_;
  GraphCatalog catalog_;
  ResultCache cache_;
  /// Pin on the default graph's entry for the service lifetime — graph()
  /// and worker NUMA pinning stay valid even if someone evicts "default".
  GraphCatalog::Handle default_handle_;
  WorkspacePool pool_;

  mutable sys::Mutex queue_m_;
  sys::CondVar queue_cv_;
  std::deque<Job> queue_ GRIND_GUARDED_BY(queue_m_);
  bool stopping_ GRIND_GUARDED_BY(queue_m_) = false;
  /// Serialises shutdown() against itself AND guards workers_: join/clear
  /// must never race a num_workers() observer (a real data race the first
  /// annotation pass surfaced — see docs/STATIC_ANALYSIS.md).
  mutable sys::Mutex shutdown_m_;
  std::vector<std::thread> workers_ GRIND_GUARDED_BY(shutdown_m_);

  mutable sys::Mutex stats_m_;
  ServiceStats stats_ GRIND_GUARDED_BY(stats_m_);
};

}  // namespace grind::service
