#include "service/graph_service.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <new>
#include <optional>
#include <stdexcept>
#include <utility>

#include "engine/engine.hpp"
#include "sys/fault.hpp"
#include "sys/parallel.hpp"
#include "sys/timer.hpp"

namespace grind::service {

namespace {

/// Parameter keys that cap an iterative algorithm's round count; the
/// overload policy clamps whichever of these the target schema declares.
constexpr const char* kIterationKeys[] = {"iterations", "max_rounds"};

QueryStatus status_of(sys::CancelState s) {
  return s == sys::CancelState::kDeadlineExceeded
             ? QueryStatus::kDeadlineExceeded
             : QueryStatus::kCancelled;
}

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

const char* to_string(QueryStatus s) {
  switch (s) {
    case QueryStatus::kOk: return "ok";
    case QueryStatus::kError: return "error";
    case QueryStatus::kDeadlineExceeded: return "deadline";
    case QueryStatus::kCancelled: return "cancelled";
    case QueryStatus::kShed: return "shed";
  }
  return "?";
}

GraphService::GraphService(graph::Graph g, ServiceConfig cfg)
    : cfg_(cfg),
      catalog_(GraphCatalog::Config{cfg.catalog_byte_budget}),
      cache_(ResultCache::Config{cfg.result_cache_capacity}),
      pool_(cfg.pool_capacity != 0 ? cfg.pool_capacity
                                   : std::max<std::size_t>(1, cfg.workers)) {
  if (cfg_.workers == 0) cfg_.workers = 1;
  // Load eagerly under the default name: the entry resolves the per-graph
  // default source at load, so queries are never the first to compute
  // state reachable from the shared graph.  The handle pins the entry for
  // the service lifetime.
  default_handle_ = catalog_.load(kDefaultGraphName, std::move(g));
  start_workers();
}

GraphService::GraphService(ServiceConfig cfg)
    : cfg_(cfg),
      catalog_(GraphCatalog::Config{cfg.catalog_byte_budget}),
      cache_(ResultCache::Config{cfg.result_cache_capacity}),
      pool_(cfg.pool_capacity != 0 ? cfg.pool_capacity
                                   : std::max<std::size_t>(1, cfg.workers)) {
  if (cfg_.workers == 0) cfg_.workers = 1;
  start_workers();
}

void GraphService::start_workers() {
  // Construction is single-threaded, but workers_ is guarded by
  // shutdown_m_ and the lock is uncontended here — take it so the
  // annotation holds everywhere rather than special-casing the ctor.
  sys::MutexLock lock(shutdown_m_);
  workers_.reserve(cfg_.workers);
  for (std::size_t i = 0; i < cfg_.workers; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

const graph::Graph& GraphService::graph() const {
  if (default_handle_ == nullptr)
    throw std::logic_error(
        "GraphService: no default graph (catalog-only service)");
  return default_handle_->graph();
}

std::uint64_t GraphService::load_graph(const std::string& name,
                                       graph::Graph g) {
  return catalog_.load(name, std::move(g))->epoch();
}

GraphCatalog::EvictOutcome GraphService::evict_graph(const std::string& name) {
  const GraphCatalog::EvictOutcome outcome = catalog_.evict(name);
  // Cached results for the unlinked graph are dead either way — a reload
  // gets a fresh (never-reused) epoch — so return their memory now instead
  // of waiting for LRU aging.
  if (outcome != GraphCatalog::EvictOutcome::kNotFound)
    cache_.purge_graph(name);
  return outcome;
}

std::uint64_t GraphService::bump_epoch(const std::string& name) {
  return catalog_.bump_epoch(name);
}

std::vector<GraphCatalog::Info> GraphService::list_graphs() const {
  return catalog_.list();
}

GraphService::~GraphService() { shutdown(); }

void GraphService::shutdown() {
  // Serialise whole shutdowns so two concurrent calls (or an explicit call
  // racing the destructor) cannot both join the same threads.
  sys::MutexLock shutdown_lock(shutdown_m_);
  std::deque<Job> stolen;
  {
    sys::MutexLock lock(queue_m_);
    stopping_ = true;
    stolen.swap(queue_);  // steal atomically with the flag: workers that
                          // wake on stopping_ find an empty queue
  }
  // Wake blocked pool waits (a worker waiting for a lease cannot observe
  // stopping_) — acquire returns invalid / nullopt and the query resolves
  // kCancelled instead of wedging the join below.
  pool_.close();
  queue_cv_.notify_all();
  // Every stolen entry resolves its future(s): shutdown cancels queued work,
  // it never drops it.  In-flight queries run to completion.
  for (auto& job : stolen) job.drop(QueryStatus::kCancelled, "service shutdown");
  for (auto& w : workers_)
    if (w.joinable()) w.join();
  workers_.clear();
}

void GraphService::worker_loop(std::size_t index) {
  // Limit OpenMP parallelism for this worker only: queries run with
  // threads_per_query-wide inner parallelism, so k workers never
  // oversubscribe beyond k·threads_per_query.
  ThreadLimitGuard limit(cfg_.threads_per_query);
  // Pin the worker round-robin to the default graph's NUMA domains: its
  // traversals start from its home domain's partitions, its pool leases
  // prefer scratch warm on that domain, and under a physical libnuma
  // backend the OS thread is bound to the node holding those partitions'
  // arenas.  A catalog-only service leaves workers unpinned — resident
  // graphs may disagree on domain count, and pinning to one of them would
  // be arbitrary.
  std::optional<DomainPinGuard> pin;
  if (default_handle_ != nullptr) {
    const NumaModel& numa = default_handle_->graph().numa();
    pin.emplace(numa.domain_of_thread(static_cast<int>(index),
                                      static_cast<int>(cfg_.workers)));
  }
  for (;;) {
    Job job;
    {
      sys::UniqueLock lock(queue_m_);
      while (!stopping_ && queue_.empty()) queue_cv_.wait(lock);
      // shutdown() steals the queue under the same lock that sets
      // stopping_, so stopping_ ⇒ nothing left to run here.
      if (stopping_) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    if (cfg_.admission_timeout.count() > 0 &&
        Clock::now() - job.enqueued > cfg_.admission_timeout) {
      // Stale entry: the submitter's latency budget is already blown and
      // executing it only delays everything behind it.
      job.drop(QueryStatus::kShed, "admission timeout exceeded in queue");
    } else {
      job.run();
    }
  }
}

bool GraphService::enqueue(Job&& job) {
  {
    sys::MutexLock lock(queue_m_);
    if (stopping_)
      throw std::runtime_error("GraphService: submit after shutdown");
    if (cfg_.max_queue_depth != 0 && queue_.size() >= cfg_.max_queue_depth)
      return false;
    queue_.push_back(std::move(job));
  }
  queue_cv_.notify_one();
  return true;
}

std::size_t GraphService::queue_depth() const {
  sys::MutexLock lock(queue_m_);
  return queue_.size();
}

QueryResult GraphService::unrun_result(const std::string& algorithm,
                                       QueryStatus status, std::string why) {
  QueryResult r;
  r.algorithm = algorithm;
  r.status = status;
  r.error = std::move(why);
  return r;
}

const std::string& GraphService::graph_name_of(const QueryRequest& req) {
  static const std::string kDefault = kDefaultGraphName;
  return req.graph.empty() ? kDefault : req.graph;
}

bool GraphService::prepare(const QueryRequest& req, Prepared* out,
                           QueryResult* early) {
  const std::string& name = graph_name_of(req);
  out->entry = catalog_.find(name);
  if (out->entry == nullptr) {
    *early = unrun_result(req.algorithm, QueryStatus::kError,
                          "unknown graph: " + name);
    return false;
  }
  out->desc = algorithms::AlgorithmRegistry::instance().find(req.algorithm);
  if (out->desc == nullptr) {
    *early = unrun_result(req.algorithm, QueryStatus::kError,
                          "unknown algorithm: " + req.algorithm);
    return false;
  }
  try {
    algorithms::Params params = req.params;
    // The *target graph's* default source, resolved once at load — never a
    // service-wide default that would serve the wrong vertex on a second
    // graph.
    if (out->desc->caps.needs_source && !params.has("source") &&
        out->entry->default_source() != kInvalidVertex)
      params.set("source", out->entry->default_source());
    // Full schema resolution up front: defaults filled, ranges (including
    // the source, against *this* graph) checked.  The resolved bag is what
    // the run will see and what the cache key fingerprints.
    out->resolved = out->desc->resolve(params, out->entry->graph());
  } catch (const std::exception& e) {
    *early = unrun_result(req.algorithm, QueryStatus::kError, e.what());
    return false;
  }
  if (cache_.enabled() && out->desc->caps.deterministic) {
    out->key = ResultCache::Key{name, out->entry->epoch(), out->desc->name,
                                algorithms::canonical_fingerprint(out->resolved)};
    out->cacheable = true;
    if (std::optional<algorithms::AnyResult> hit = cache_.get(out->key)) {
      // Served on the submitter's thread: no queue slot, no workspace
      // lease, the shared payload the populating run produced.
      QueryResult r;
      r.algorithm = req.algorithm;
      r.value = std::move(*hit);
      r.cached = true;
      *early = std::move(r);
      return false;
    }
  }
  return true;
}

void GraphService::maybe_cache(const Prepared& prep, const QueryResult& r) {
  // Degraded runs are approximations under a clamped iteration cap — never
  // serve them to callers who asked for the real thing.
  if (prep.cacheable && r.status == QueryStatus::kOk && !r.degraded)
    cache_.put(prep.key, r.value);
}

std::future<QueryResult> GraphService::submit(QueryRequest req) {
  auto request = std::make_shared<QueryRequest>(std::move(req));
  auto promise = std::make_shared<std::promise<QueryResult>>();
  std::future<QueryResult> fut = promise->get_future();
  const std::string gname = graph_name_of(*request);

  // The deadline clock starts at admission: queue wait counts against it.
  std::shared_ptr<sys::CancelToken> token = request->cancel;
  if (token == nullptr && request->deadline.count() > 0)
    token = std::make_shared<sys::CancelToken>();
  if (token != nullptr && request->deadline.count() > 0)
    token->set_deadline_in(request->deadline);

  // Resolve {graph, algorithm, params} and probe the cache before
  // queueing: validation failures and cache hits resolve right here on the
  // submitter's thread, consuming neither a queue slot nor (for hits) a
  // workspace lease.  The Prepared entry handle pins the graph across the
  // queue wait, so an evict/reload landing mid-queue cannot yank it.
  auto prep = std::make_shared<Prepared>();
  {
    QueryResult early;
    if (!prepare(*request, prep.get(), &early)) {
      record(early, gname);
      promise->set_value(std::move(early));
      return fut;
    }
  }

  Job job;
  job.enqueued = Clock::now();
  const auto enqueued = job.enqueued;
  job.drop = [this, request, promise, gname,
              enqueued](QueryStatus st, const std::string& why) {
    QueryResult r = unrun_result(request->algorithm, st, why);
    // The real queue wait, not 0: admission-timeout sheds and
    // cancelled-in-queue resolutions are exactly the tail the latency
    // percentiles exist to expose.
    r.queue_seconds = seconds_between(enqueued, Clock::now());
    record(r, gname);
    promise->set_value(std::move(r));
  };
  job.run = [this, prep, promise, token, gname, enqueued] {
    QueryResult r = run_one(*prep, token, enqueued);
    record(r, gname);
    promise->set_value(std::move(r));
  };
  if (!enqueue(std::move(job))) {
    // Full queue: shed on the submitter's thread, immediately — admission
    // control must never block the caller.
    QueryResult r = unrun_result(request->algorithm, QueryStatus::kShed,
                                 "queue full (max_queue_depth)");
    record(r, gname);
    promise->set_value(std::move(r));
  }
  return fut;
}

bool GraphService::acquire_lease(const std::string& algorithm,
                                 const std::shared_ptr<sys::CancelToken>& token,
                                 Clock::time_point start,
                                 WorkspacePool::Lease* lease,
                                 QueryResult* failure) {
  // Lease scratch warm on this worker's domain, waiting no longer than the
  // query's own deadline and the configured lease timeout allow.  Lazy
  // workspace creation can throw bad_alloc (real memory pressure, or the
  // "pool.workspace-alloc" fault site) — that fails this query, never the
  // worker; the unclaimed capacity slot stays available for later queries.
  const bool token_deadline = token != nullptr && token->has_deadline();
  try {
    if (token_deadline || cfg_.lease_timeout.count() > 0) {
      Clock::time_point until = Clock::time_point::max();
      if (token_deadline) until = token->deadline();
      if (cfg_.lease_timeout.count() > 0)
        until = std::min(until, start + cfg_.lease_timeout);
      auto opt = pool_.try_acquire_until(until, preferred_domain());
      if (!opt.has_value()) {
        *failure =
            pool_.closed()
                ? unrun_result(algorithm, QueryStatus::kCancelled,
                               "service shutdown")
                : (token != nullptr && token->should_stop()
                       ? unrun_result(algorithm, status_of(token->state()),
                                      "deadline exceeded waiting for workspace")
                       : unrun_result(algorithm, QueryStatus::kShed,
                                      "workspace lease timeout"));
        return false;
      }
      *lease = std::move(*opt);
    } else {
      // grind-lint: allow(untimed-acquire) reachable only when the query
      // carries no deadline AND cfg_.lease_timeout is 0 — the caller asked
      // for an unbounded wait, and shutdown()'s pool close() still wakes it.
      *lease = pool_.acquire(preferred_domain());
      if (!lease->valid()) {
        // The pool was closed by shutdown() while we waited.
        *failure = unrun_result(algorithm, QueryStatus::kCancelled,
                                "service shutdown");
        return false;
      }
    }
  } catch (const std::bad_alloc&) {
    *failure = unrun_result(algorithm, QueryStatus::kError,
                            "workspace allocation failed");
    return false;
  }
  return true;
}

QueryResult GraphService::run_one(
    const Prepared& prep, const std::shared_ptr<sys::CancelToken>& token,
    Clock::time_point enqueued) {
  const Clock::time_point start = Clock::now();
  const double queue_seconds = seconds_between(enqueued, start);
  const std::string& algorithm = prep.desc->name;

  // The deadline may already have passed while the query sat in line.
  if (token != nullptr) {
    const sys::CancelState s = token->state();
    if (s != sys::CancelState::kRun) {
      QueryResult r = unrun_result(algorithm, status_of(s),
                                   s == sys::CancelState::kDeadlineExceeded
                                       ? "deadline exceeded in queue"
                                       : "cancelled in queue");
      r.queue_seconds = queue_seconds;
      return r;
    }
  }

  WorkspacePool::Lease lease;
  {
    QueryResult failure;
    if (!acquire_lease(algorithm, token, start, &lease, &failure)) {
      failure.queue_seconds = queue_seconds;
      return failure;
    }
  }

  GRIND_FAULT_STALL("service.worker-stall");

  QueryResult r = execute(prep, token, *lease, queue_depth());
  lease.release();  // return the workspace before the future wakes waiters
  maybe_cache(prep, r);
  r.queue_seconds = queue_seconds;
  return r;
}

std::vector<QueryResult> GraphService::run_batch(
    std::vector<QueryRequest> reqs) {
  {
    // Fail like submit() does: without this check a post-shutdown batch
    // would enqueue zero slices (workers_ is empty) and return fabricated
    // default results.
    sys::MutexLock lock(queue_m_);
    if (stopping_)
      throw std::runtime_error("GraphService: run_batch after shutdown");
  }
  if (reqs.empty()) return {};

  struct BatchState {
    std::vector<QueryRequest> reqs;
    std::vector<std::shared_ptr<sys::CancelToken>> tokens;
    std::vector<Prepared> prepared;
    std::vector<QueryResult> results;
  };
  auto state = std::make_shared<BatchState>();
  state->reqs = std::move(reqs);
  state->results.resize(state->reqs.size());
  state->prepared.resize(state->reqs.size());
  // Deadlines stamp at batch admission, one token per deadline/cancel-
  // carrying request.
  state->tokens.resize(state->reqs.size());
  for (std::size_t i = 0; i < state->reqs.size(); ++i) {
    QueryRequest& q = state->reqs[i];
    std::shared_ptr<sys::CancelToken> t = q.cancel;
    if (t == nullptr && q.deadline.count() > 0)
      t = std::make_shared<sys::CancelToken>();
    if (t != nullptr && q.deadline.count() > 0) t->set_deadline_in(q.deadline);
    state->tokens[i] = std::move(t);
  }

  // Prepare every request up front (pinning its graph across the queue
  // wait) and group the survivors by algorithm, keeping request order
  // inside each group so results land back at their original positions.
  // Validation failures and cache hits resolve right here and never join a
  // slice.
  std::map<std::string, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < state->reqs.size(); ++i) {
    QueryResult early;
    if (prepare(state->reqs[i], &state->prepared[i], &early)) {
      groups[state->reqs[i].algorithm].push_back(i);
    } else {
      state->results[i] = std::move(early);
      record(state->results[i], graph_name_of(state->reqs[i]));
    }
  }

  std::vector<std::future<void>> slices;
  for (auto& [algo, indices] : groups) {
    (void)algo;
    // One slice per worker (at most): each slice leases a single workspace
    // and keeps it across all its queries, so the lease cost, the warm
    // frontier buffers, and the engine setup amortise over the group.
    // cfg_.workers (immutable after construction) rather than
    // workers_.size(), which shutdown() mutates.
    const std::size_t n_slices =
        std::min<std::size_t>(cfg_.workers, indices.size());
    for (std::size_t s = 0; s < n_slices; ++s) {
      std::vector<std::size_t> mine;
      for (std::size_t k = s; k < indices.size(); k += n_slices)
        mine.push_back(indices[k]);
      auto done = std::make_shared<std::promise<void>>();
      slices.push_back(done->get_future());

      Job job;
      job.enqueued = Clock::now();
      const auto enqueued = job.enqueued;
      // Shed / cancelled without running: resolve the whole slice, with the
      // real queue wait stamped (admission-timeout sheds and shutdown
      // steals are the tail the percentiles exist to expose).
      job.drop = [this, state, done, enqueued, mine](QueryStatus st,
                                                     const std::string& why) {
        const double queue_seconds = seconds_between(enqueued, Clock::now());
        for (std::size_t i : mine) {
          state->results[i] =
              unrun_result(state->reqs[i].algorithm, st, why);
          state->results[i].queue_seconds = queue_seconds;
          record(state->results[i], graph_name_of(state->reqs[i]));
        }
        done->set_value();
      };
      job.run = [this, state, done, enqueued, mine = std::move(mine)] {
        // One lease serves the whole slice, but it is acquired through the
        // same deadline/lease_timeout-bounded path as run_one — an
        // exhausted pool sheds or deadline-fails each query instead of
        // wedging the worker on an untimed acquire.  On a lease failure the
        // *next* query retries: its own deadline may still have room, and
        // after a bad_alloc the unclaimed capacity slot stays claimable.
        WorkspacePool::Lease lease;
        for (std::size_t i : mine) {
          const auto& token = state->tokens[i];
          QueryResult& r = state->results[i];
          // Per-query stamp at *this* query's execution start: later
          // queries in the slice really did wait behind the earlier ones
          // holding the shared lease, and their queue_seconds must say so.
          const Clock::time_point query_start = Clock::now();
          if (token != nullptr && token->should_stop()) {
            r = unrun_result(state->reqs[i].algorithm,
                             status_of(token->state()),
                             token->state() ==
                                     sys::CancelState::kDeadlineExceeded
                                 ? "deadline exceeded in queue"
                                 : "cancelled in queue");
          } else if (lease.valid() ||
                     acquire_lease(state->reqs[i].algorithm, token,
                                   query_start, &lease, &r)) {
            r = execute(state->prepared[i], token, *lease, queue_depth());
            maybe_cache(state->prepared[i], r);
          }
          r.queue_seconds = seconds_between(enqueued, query_start);
          record(r, graph_name_of(state->reqs[i]));
        }
        lease.release();
        done->set_value();
      };
      // enqueue leaves `job` intact on both failure paths; job.drop holds
      // its own copy of the slice's indices (`mine` moved into job.run).
      bool admitted = false;
      try {
        admitted = enqueue(std::move(job));
      } catch (const std::runtime_error&) {
        // shutdown() landed between the entry check and this slice: cancel
        // the slice like any other queued-at-shutdown work instead of
        // throwing a half-dispatched batch at the caller.
        job.drop(QueryStatus::kCancelled, "service shutdown");
        continue;
      }
      if (!admitted) {
        // Queue full: this slice is refused as a unit; its queries resolve
        // kShed right here on the submitter's thread.
        job.drop(QueryStatus::kShed, "queue full (max_queue_depth)");
      }
    }
  }
  for (auto& f : slices) f.wait();
  {
    sys::MutexLock lock(stats_m_);
    ++stats_.batches;
  }
  return std::move(state->results);
}

QueryResult GraphService::execute(
    const Prepared& prep,
    const std::shared_ptr<const sys::CancelToken>& token,
    engine::TraversalWorkspace& ws, std::size_t depth_at_start) const {
  QueryResult r;
  r.algorithm = prep.desc->name;
  Timer timer;
  // The engine outlives the try so the catch handlers can read its sweep
  // count — the partial-progress report of a cancelled query.  The graph
  // is the query's pinned catalog entry: valid for as long as this runs,
  // whatever the catalog did meanwhile.
  engine::Options opts = cfg_.engine;
  opts.cancel = token;
  engine::Engine eng(prep.entry->graph(), opts, ws);
  try {
    // prepare() already resolved the schema (defaults + per-graph source +
    // range checks); only the overload clamp can still rewrite the bag.
    algorithms::Params params = prep.resolved;
    // Overload policy: past the queue-depth watermark, clamp the iteration
    // cap of iterative algorithms — degrade accuracy before availability.
    if (cfg_.overload.queue_watermark > 0 && cfg_.overload.max_iterations > 0 &&
        depth_at_start > cfg_.overload.queue_watermark) {
      for (const char* key : kIterationKeys) {
        const algorithms::ParamSpec* spec = prep.desc->schema.find(key);
        if (spec == nullptr) continue;
        std::int64_t requested = cfg_.overload.max_iterations + 1;
        if (params.has(key)) {
          requested = params.get_int(key);
        } else if (spec->default_value.has_value()) {
          requested = std::get<std::int64_t>(*spec->default_value);
        }
        if (requested > cfg_.overload.max_iterations) {
          params.set(key, cfg_.overload.max_iterations);
          r.degraded = true;
        }
      }
    }
    r.value = prep.desc->run_resolved(eng, params);
    r.iterations_done = eng.sweeps_done();
  } catch (const sys::Cancelled& c) {
    // Must precede the std::exception handler (Cancelled derives from
    // runtime_error): a stopped query is a status, not an error class.
    r.value = algorithms::AnyResult{};
    r.status = status_of(c.why());
    r.error = c.what();
    r.iterations_done = eng.sweeps_done();
  } catch (const std::bad_alloc&) {
    r.value = algorithms::AnyResult{};
    r.status = QueryStatus::kError;
    r.error = "allocation failure during query execution";
  } catch (const std::exception& e) {
    r.value = algorithms::AnyResult{};
    r.status = QueryStatus::kError;
    r.error = e.what();
  } catch (...) {
    r.value = algorithms::AnyResult{};
    r.status = QueryStatus::kError;
    r.error = "unknown error";
  }
  r.seconds = timer.seconds();
  return r;
}

void GraphService::record(const QueryResult& r,
                          const std::string& graph_name) {
  sys::MutexLock lock(stats_m_);
  ++stats_.queries_completed;
  switch (r.status) {
    case QueryStatus::kOk: break;
    case QueryStatus::kError: ++stats_.queries_failed; break;
    case QueryStatus::kShed: ++stats_.queries_shed; break;
    case QueryStatus::kCancelled: ++stats_.queries_cancelled; break;
    case QueryStatus::kDeadlineExceeded:
      ++stats_.queries_deadline_exceeded;
      break;
  }
  if (r.degraded) ++stats_.queries_degraded;
  stats_.busy_seconds += r.seconds;
  ServiceStats::PerGraph& pg = stats_.per_graph[graph_name];
  ++pg.queries;
  if (r.cached) ++pg.cache_hits;
}

ServiceStats GraphService::stats() const {
  ServiceStats s;
  {
    sys::MutexLock lock(stats_m_);
    s = stats_;
  }
  // The cache keeps its own counters (it has its own lock); merge at
  // snapshot time so the two never deadlock or double-count.
  const ResultCache::Stats cs = cache_.stats();
  s.cache_hits = cs.hits;
  s.cache_misses = cs.misses;
  s.cache_evictions = cs.evictions;
  return s;
}

}  // namespace grind::service
