#include "service/graph_service.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>
#include <utility>

#include "engine/engine.hpp"
#include "sys/parallel.hpp"
#include "sys/timer.hpp"

namespace grind::service {

namespace {

/// Enum-value ↔ paper-code correspondence of the deprecated compatibility
/// enum.  The registry owns the codes; this table only fixes which code
/// each legacy enum value meant.
constexpr const char* kLegacyCodes[] = {
    "BFS", "CC", "PR", "PRDelta", "BF", "BC", "SPMV", "BP",
};

}  // namespace

// The shims implement the deprecated surface; silence the self-referential
// deprecation warnings inside their own definitions.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

const char* algorithm_name(Algorithm a) {
  const auto i = static_cast<std::size_t>(a);
  return i < std::size(kLegacyCodes) ? kLegacyCodes[i] : "?";
}

std::optional<Algorithm> parse_algorithm(std::string_view code) {
  // Only codes the registry actually knows parse, so the registry stays the
  // single source of truth even through the legacy surface.
  if (algorithms::AlgorithmRegistry::instance().find(code) == nullptr)
    return std::nullopt;
  for (std::size_t i = 0; i < std::size(kLegacyCodes); ++i)
    if (code == kLegacyCodes[i]) return static_cast<Algorithm>(i);
  return std::nullopt;
}

QueryRequest::QueryRequest(Algorithm a) : algorithm(algorithm_name(a)) {}

#pragma GCC diagnostic pop

GraphService::GraphService(graph::Graph g, ServiceConfig cfg)
    : graph_(std::move(g)),
      cfg_(cfg),
      pool_(cfg.pool_capacity != 0 ? cfg.pool_capacity
                                   : std::max<std::size_t>(1, cfg.workers)) {
  if (cfg_.workers == 0) cfg_.workers = 1;
  // Resolve shared defaults eagerly: queries must never be the first to
  // compute state reachable from the shared graph.
  if (graph_.num_vertices() > 0)
    default_source_ = graph_.max_out_degree_source();
  workers_.reserve(cfg_.workers);
  for (std::size_t i = 0; i < cfg_.workers; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

GraphService::~GraphService() { shutdown(); }

void GraphService::shutdown() {
  // Serialise whole shutdowns so two concurrent calls (or an explicit call
  // racing the destructor) cannot both join the same threads.
  std::lock_guard<std::mutex> shutdown_lock(shutdown_m_);
  {
    std::lock_guard<std::mutex> lock(queue_m_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_)
    if (w.joinable()) w.join();
  workers_.clear();
}

void GraphService::worker_loop(std::size_t index) {
  // Limit OpenMP parallelism for this worker only: queries run with
  // threads_per_query-wide inner parallelism, so k workers never
  // oversubscribe beyond k·threads_per_query.
  ThreadLimitGuard limit(cfg_.threads_per_query);
  // Pin the worker round-robin to the graph's NUMA domains: its traversals
  // start from its home domain's partitions, its pool leases prefer scratch
  // warm on that domain, and under a physical libnuma backend the OS thread
  // is bound to the node holding those partitions' arenas.
  const NumaModel& numa = graph_.numa();
  DomainPinGuard pin(
      numa.domain_of_thread(static_cast<int>(index),
                            static_cast<int>(cfg_.workers)));
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(queue_m_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

void GraphService::enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(queue_m_);
    if (stopping_)
      throw std::runtime_error("GraphService: submit after shutdown");
    queue_.push_back(std::move(job));
  }
  queue_cv_.notify_one();
}

std::future<QueryResult> GraphService::submit(QueryRequest req) {
  auto request = std::make_shared<QueryRequest>(std::move(req));
  auto promise = std::make_shared<std::promise<QueryResult>>();
  std::future<QueryResult> fut = promise->get_future();
  enqueue([this, request, promise] {
    // The job runs on a pinned worker: lease scratch warm on its domain.
    auto lease = pool_.acquire(preferred_domain());
    QueryResult r = execute(*request, *lease);
    lease.release();  // return the workspace before the future wakes waiters
    record(r);
    promise->set_value(std::move(r));
  });
  return fut;
}

std::vector<QueryResult> GraphService::run_batch(
    std::vector<QueryRequest> reqs) {
  {
    // Fail like submit() does: without this check a post-shutdown batch
    // would enqueue zero slices (workers_ is empty) and return fabricated
    // default results.
    std::lock_guard<std::mutex> lock(queue_m_);
    if (stopping_)
      throw std::runtime_error("GraphService: run_batch after shutdown");
  }
  if (reqs.empty()) return {};

  // Group request indices by algorithm, keeping request order inside each
  // group so results land back at their original positions.
  std::map<std::string, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < reqs.size(); ++i)
    groups[reqs[i].algorithm].push_back(i);

  struct BatchState {
    std::vector<QueryRequest> reqs;
    std::vector<QueryResult> results;
  };
  auto state = std::make_shared<BatchState>();
  state->reqs = std::move(reqs);
  state->results.resize(state->reqs.size());

  std::vector<std::future<void>> slices;
  for (auto& [algo, indices] : groups) {
    (void)algo;
    // One slice per worker (at most): each slice leases a single workspace
    // and keeps it across all its queries, so the lease cost, the warm
    // frontier buffers, and the engine setup amortise over the group.
    // cfg_.workers (immutable after construction) rather than
    // workers_.size(), which shutdown() mutates.
    const std::size_t n_slices =
        std::min<std::size_t>(cfg_.workers, indices.size());
    for (std::size_t s = 0; s < n_slices; ++s) {
      std::vector<std::size_t> mine;
      for (std::size_t k = s; k < indices.size(); k += n_slices)
        mine.push_back(indices[k]);
      auto done = std::make_shared<std::promise<void>>();
      slices.push_back(done->get_future());
      enqueue([this, state, done, mine = std::move(mine)] {
        auto lease = pool_.acquire(preferred_domain());
        for (std::size_t i : mine) {
          state->results[i] = execute(state->reqs[i], *lease);
          record(state->results[i]);
        }
        lease.release();
        done->set_value();
      });
    }
  }
  for (auto& f : slices) f.wait();
  {
    std::lock_guard<std::mutex> lock(stats_m_);
    ++stats_.batches;
  }
  return std::move(state->results);
}

QueryResult GraphService::execute(const QueryRequest& req,
                                  engine::TraversalWorkspace& ws) const {
  QueryResult r;
  r.algorithm = req.algorithm;
  // Registry dispatch: capability flags (needs_source), the parameter
  // schema, and the runner all come from the registered descriptor, so an
  // algorithm registered anywhere in the library is servable here with no
  // edits.  The lookup is one scan of a ~10-entry table per query; the
  // per-iteration traversal hot path never touches the registry.
  const algorithms::AlgorithmDesc* desc =
      algorithms::AlgorithmRegistry::instance().find(req.algorithm);
  if (desc == nullptr) {
    r.error = "unknown algorithm: " + req.algorithm;
    return r;
  }
  Timer timer;
  try {
    algorithms::Params params = req.params;
    if (desc->caps.needs_source && !params.has("source") &&
        default_source_ != kInvalidVertex)
      params.set("source", default_source_);
    engine::Engine eng(graph_, cfg_.engine, ws);
    // run() resolves the schema first: unknown keys, wrong types and
    // out-of-range values (including the source, for *every* source-taking
    // algorithm) throw here and surface as r.error below.
    r.value = desc->run(eng, params);
  } catch (const std::exception& e) {
    r.value = algorithms::AnyResult{};
    r.error = e.what();
  } catch (...) {
    r.value = algorithms::AnyResult{};
    r.error = "unknown error";
  }
  r.seconds = timer.seconds();
  return r;
}

void GraphService::record(const QueryResult& r) {
  std::lock_guard<std::mutex> lock(stats_m_);
  ++stats_.queries_completed;
  if (!r.ok()) ++stats_.queries_failed;
  stats_.busy_seconds += r.seconds;
}

ServiceStats GraphService::stats() const {
  std::lock_guard<std::mutex> lock(stats_m_);
  return stats_;
}

}  // namespace grind::service
