#include "service/graph_service.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <new>
#include <stdexcept>
#include <utility>

#include "engine/engine.hpp"
#include "sys/fault.hpp"
#include "sys/parallel.hpp"
#include "sys/timer.hpp"

namespace grind::service {

namespace {

/// Parameter keys that cap an iterative algorithm's round count; the
/// overload policy clamps whichever of these the target schema declares.
constexpr const char* kIterationKeys[] = {"iterations", "max_rounds"};

QueryStatus status_of(sys::CancelState s) {
  return s == sys::CancelState::kDeadlineExceeded
             ? QueryStatus::kDeadlineExceeded
             : QueryStatus::kCancelled;
}

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

const char* to_string(QueryStatus s) {
  switch (s) {
    case QueryStatus::kOk: return "ok";
    case QueryStatus::kError: return "error";
    case QueryStatus::kDeadlineExceeded: return "deadline";
    case QueryStatus::kCancelled: return "cancelled";
    case QueryStatus::kShed: return "shed";
  }
  return "?";
}

GraphService::GraphService(graph::Graph g, ServiceConfig cfg)
    : graph_(std::move(g)),
      cfg_(cfg),
      pool_(cfg.pool_capacity != 0 ? cfg.pool_capacity
                                   : std::max<std::size_t>(1, cfg.workers)) {
  if (cfg_.workers == 0) cfg_.workers = 1;
  // Resolve shared defaults eagerly: queries must never be the first to
  // compute state reachable from the shared graph.
  if (graph_.num_vertices() > 0)
    default_source_ = graph_.max_out_degree_source();
  workers_.reserve(cfg_.workers);
  for (std::size_t i = 0; i < cfg_.workers; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

GraphService::~GraphService() { shutdown(); }

void GraphService::shutdown() {
  // Serialise whole shutdowns so two concurrent calls (or an explicit call
  // racing the destructor) cannot both join the same threads.
  std::lock_guard<std::mutex> shutdown_lock(shutdown_m_);
  std::deque<Job> stolen;
  {
    std::lock_guard<std::mutex> lock(queue_m_);
    stopping_ = true;
    stolen.swap(queue_);  // steal atomically with the flag: workers that
                          // wake on stopping_ find an empty queue
  }
  // Wake blocked pool waits (a worker waiting for a lease cannot observe
  // stopping_) — acquire returns invalid / nullopt and the query resolves
  // kCancelled instead of wedging the join below.
  pool_.close();
  queue_cv_.notify_all();
  // Every stolen entry resolves its future(s): shutdown cancels queued work,
  // it never drops it.  In-flight queries run to completion.
  for (auto& job : stolen) job.drop(QueryStatus::kCancelled, "service shutdown");
  for (auto& w : workers_)
    if (w.joinable()) w.join();
  workers_.clear();
}

void GraphService::worker_loop(std::size_t index) {
  // Limit OpenMP parallelism for this worker only: queries run with
  // threads_per_query-wide inner parallelism, so k workers never
  // oversubscribe beyond k·threads_per_query.
  ThreadLimitGuard limit(cfg_.threads_per_query);
  // Pin the worker round-robin to the graph's NUMA domains: its traversals
  // start from its home domain's partitions, its pool leases prefer scratch
  // warm on that domain, and under a physical libnuma backend the OS thread
  // is bound to the node holding those partitions' arenas.
  const NumaModel& numa = graph_.numa();
  DomainPinGuard pin(
      numa.domain_of_thread(static_cast<int>(index),
                            static_cast<int>(cfg_.workers)));
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_m_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      // shutdown() steals the queue under the same lock that sets
      // stopping_, so stopping_ ⇒ nothing left to run here.
      if (stopping_) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    if (cfg_.admission_timeout.count() > 0 &&
        Clock::now() - job.enqueued > cfg_.admission_timeout) {
      // Stale entry: the submitter's latency budget is already blown and
      // executing it only delays everything behind it.
      job.drop(QueryStatus::kShed, "admission timeout exceeded in queue");
    } else {
      job.run();
    }
  }
}

bool GraphService::enqueue(Job&& job) {
  {
    std::lock_guard<std::mutex> lock(queue_m_);
    if (stopping_)
      throw std::runtime_error("GraphService: submit after shutdown");
    if (cfg_.max_queue_depth != 0 && queue_.size() >= cfg_.max_queue_depth)
      return false;
    queue_.push_back(std::move(job));
  }
  queue_cv_.notify_one();
  return true;
}

std::size_t GraphService::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_m_);
  return queue_.size();
}

QueryResult GraphService::unrun_result(const std::string& algorithm,
                                       QueryStatus status, std::string why) {
  QueryResult r;
  r.algorithm = algorithm;
  r.status = status;
  r.error = std::move(why);
  return r;
}

std::future<QueryResult> GraphService::submit(QueryRequest req) {
  auto request = std::make_shared<QueryRequest>(std::move(req));
  auto promise = std::make_shared<std::promise<QueryResult>>();
  std::future<QueryResult> fut = promise->get_future();

  // The deadline clock starts at admission: queue wait counts against it.
  std::shared_ptr<sys::CancelToken> token = request->cancel;
  if (token == nullptr && request->deadline.count() > 0)
    token = std::make_shared<sys::CancelToken>();
  if (token != nullptr && request->deadline.count() > 0)
    token->set_deadline_in(request->deadline);

  Job job;
  job.enqueued = Clock::now();
  const auto enqueued = job.enqueued;
  job.drop = [this, request, promise](QueryStatus st, const std::string& why) {
    QueryResult r = unrun_result(request->algorithm, st, why);
    record(r);
    promise->set_value(std::move(r));
  };
  job.run = [this, request, promise, token, enqueued] {
    QueryResult r = run_one(*request, token, enqueued);
    record(r);
    promise->set_value(std::move(r));
  };
  if (!enqueue(std::move(job))) {
    // Full queue: shed on the submitter's thread, immediately — admission
    // control must never block the caller.
    QueryResult r = unrun_result(request->algorithm, QueryStatus::kShed,
                                 "queue full (max_queue_depth)");
    record(r);
    promise->set_value(std::move(r));
  }
  return fut;
}

QueryResult GraphService::run_one(
    const QueryRequest& req, const std::shared_ptr<sys::CancelToken>& token,
    Clock::time_point enqueued) {
  const Clock::time_point start = Clock::now();
  const double queue_seconds = seconds_between(enqueued, start);

  // The deadline may already have passed while the query sat in line.
  if (token != nullptr) {
    const sys::CancelState s = token->state();
    if (s != sys::CancelState::kRun) {
      QueryResult r = unrun_result(req.algorithm, status_of(s),
                                   s == sys::CancelState::kDeadlineExceeded
                                       ? "deadline exceeded in queue"
                                       : "cancelled in queue");
      r.queue_seconds = queue_seconds;
      return r;
    }
  }

  // Lease scratch warm on this worker's domain, waiting no longer than the
  // query's own deadline and the configured lease timeout allow.  Lazy
  // workspace creation can throw bad_alloc (real memory pressure, or the
  // "pool.workspace-alloc" fault site) — that fails this query, never the
  // worker; the unclaimed capacity slot stays available for later queries.
  WorkspacePool::Lease lease;
  const bool token_deadline = token != nullptr && token->has_deadline();
  try {
    if (token_deadline || cfg_.lease_timeout.count() > 0) {
      Clock::time_point until = Clock::time_point::max();
      if (token_deadline) until = token->deadline();
      if (cfg_.lease_timeout.count() > 0)
        until = std::min(until, start + cfg_.lease_timeout);
      auto opt = pool_.try_acquire_until(until, preferred_domain());
      if (!opt.has_value()) {
        QueryResult r =
            pool_.closed()
                ? unrun_result(req.algorithm, QueryStatus::kCancelled,
                               "service shutdown")
                : (token != nullptr && token->should_stop()
                       ? unrun_result(req.algorithm, status_of(token->state()),
                                      "deadline exceeded waiting for workspace")
                       : unrun_result(req.algorithm, QueryStatus::kShed,
                                      "workspace lease timeout"));
        r.queue_seconds = queue_seconds;
        return r;
      }
      lease = std::move(*opt);
    } else {
      lease = pool_.acquire(preferred_domain());
      if (!lease.valid()) {
        // The pool was closed by shutdown() while we waited.
        QueryResult r = unrun_result(req.algorithm, QueryStatus::kCancelled,
                                     "service shutdown");
        r.queue_seconds = queue_seconds;
        return r;
      }
    }
  } catch (const std::bad_alloc&) {
    QueryResult r = unrun_result(req.algorithm, QueryStatus::kError,
                                 "workspace allocation failed");
    r.queue_seconds = queue_seconds;
    return r;
  }

  GRIND_FAULT_STALL("service.worker-stall");

  QueryResult r = execute(req, token, *lease, queue_depth());
  lease.release();  // return the workspace before the future wakes waiters
  r.queue_seconds = queue_seconds;
  return r;
}

std::vector<QueryResult> GraphService::run_batch(
    std::vector<QueryRequest> reqs) {
  {
    // Fail like submit() does: without this check a post-shutdown batch
    // would enqueue zero slices (workers_ is empty) and return fabricated
    // default results.
    std::lock_guard<std::mutex> lock(queue_m_);
    if (stopping_)
      throw std::runtime_error("GraphService: run_batch after shutdown");
  }
  if (reqs.empty()) return {};

  // Group request indices by algorithm, keeping request order inside each
  // group so results land back at their original positions.
  std::map<std::string, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < reqs.size(); ++i)
    groups[reqs[i].algorithm].push_back(i);

  struct BatchState {
    std::vector<QueryRequest> reqs;
    std::vector<std::shared_ptr<sys::CancelToken>> tokens;
    std::vector<QueryResult> results;
  };
  auto state = std::make_shared<BatchState>();
  state->reqs = std::move(reqs);
  state->results.resize(state->reqs.size());
  // Deadlines stamp at batch admission, one token per deadline/cancel-
  // carrying request.
  state->tokens.resize(state->reqs.size());
  for (std::size_t i = 0; i < state->reqs.size(); ++i) {
    QueryRequest& q = state->reqs[i];
    std::shared_ptr<sys::CancelToken> t = q.cancel;
    if (t == nullptr && q.deadline.count() > 0)
      t = std::make_shared<sys::CancelToken>();
    if (t != nullptr && q.deadline.count() > 0) t->set_deadline_in(q.deadline);
    state->tokens[i] = std::move(t);
  }

  std::vector<std::future<void>> slices;
  for (auto& [algo, indices] : groups) {
    (void)algo;
    // One slice per worker (at most): each slice leases a single workspace
    // and keeps it across all its queries, so the lease cost, the warm
    // frontier buffers, and the engine setup amortise over the group.
    // cfg_.workers (immutable after construction) rather than
    // workers_.size(), which shutdown() mutates.
    const std::size_t n_slices =
        std::min<std::size_t>(cfg_.workers, indices.size());
    for (std::size_t s = 0; s < n_slices; ++s) {
      std::vector<std::size_t> mine;
      for (std::size_t k = s; k < indices.size(); k += n_slices)
        mine.push_back(indices[k]);
      auto done = std::make_shared<std::promise<void>>();
      slices.push_back(done->get_future());

      Job job;
      job.enqueued = Clock::now();
      const auto enqueued = job.enqueued;
      // Shed / cancelled without running: resolve the whole slice.
      job.drop = [this, state, done, mine](QueryStatus st,
                                           const std::string& why) {
        for (std::size_t i : mine) {
          state->results[i] =
              unrun_result(state->reqs[i].algorithm, st, why);
          record(state->results[i]);
        }
        done->set_value();
      };
      job.run = [this, state, done, enqueued, mine = std::move(mine)] {
        const double queue_seconds =
            seconds_between(enqueued, Clock::now());
        WorkspacePool::Lease lease;
        bool alloc_failed = false;
        try {
          lease = pool_.acquire(preferred_domain());
        } catch (const std::bad_alloc&) {
          alloc_failed = true;  // fail the slice's queries, not the worker
        }
        for (std::size_t i : mine) {
          const auto& token = state->tokens[i];
          QueryResult& r = state->results[i];
          if (alloc_failed) {
            r = unrun_result(state->reqs[i].algorithm, QueryStatus::kError,
                             "workspace allocation failed");
          } else if (!lease.valid()) {
            r = unrun_result(state->reqs[i].algorithm,
                             QueryStatus::kCancelled, "service shutdown");
          } else if (token != nullptr && token->should_stop()) {
            r = unrun_result(state->reqs[i].algorithm,
                             status_of(token->state()),
                             token->state() ==
                                     sys::CancelState::kDeadlineExceeded
                                 ? "deadline exceeded in queue"
                                 : "cancelled in queue");
          } else {
            r = execute(state->reqs[i], token, *lease, queue_depth());
          }
          r.queue_seconds = queue_seconds;
          record(r);
        }
        lease.release();
        done->set_value();
      };
      // enqueue leaves `job` intact on both failure paths; job.drop holds
      // its own copy of the slice's indices (`mine` moved into job.run).
      bool admitted = false;
      try {
        admitted = enqueue(std::move(job));
      } catch (const std::runtime_error&) {
        // shutdown() landed between the entry check and this slice: cancel
        // the slice like any other queued-at-shutdown work instead of
        // throwing a half-dispatched batch at the caller.
        job.drop(QueryStatus::kCancelled, "service shutdown");
        continue;
      }
      if (!admitted) {
        // Queue full: this slice is refused as a unit; its queries resolve
        // kShed right here on the submitter's thread.
        job.drop(QueryStatus::kShed, "queue full (max_queue_depth)");
      }
    }
  }
  for (auto& f : slices) f.wait();
  {
    std::lock_guard<std::mutex> lock(stats_m_);
    ++stats_.batches;
  }
  return std::move(state->results);
}

QueryResult GraphService::execute(
    const QueryRequest& req,
    const std::shared_ptr<const sys::CancelToken>& token,
    engine::TraversalWorkspace& ws, std::size_t depth_at_start) const {
  QueryResult r;
  r.algorithm = req.algorithm;
  // Registry dispatch: capability flags (needs_source), the parameter
  // schema, and the runner all come from the registered descriptor, so an
  // algorithm registered anywhere in the library is servable here with no
  // edits.  The lookup is one scan of a ~10-entry table per query; the
  // per-iteration traversal hot path never touches the registry.
  const algorithms::AlgorithmDesc* desc =
      algorithms::AlgorithmRegistry::instance().find(req.algorithm);
  if (desc == nullptr) {
    r.status = QueryStatus::kError;
    r.error = "unknown algorithm: " + req.algorithm;
    return r;
  }
  Timer timer;
  // The engine outlives the try so the catch handlers can read its sweep
  // count — the partial-progress report of a cancelled query.
  engine::Options opts = cfg_.engine;
  opts.cancel = token;
  engine::Engine eng(graph_, opts, ws);
  try {
    algorithms::Params params = req.params;
    if (desc->caps.needs_source && !params.has("source") &&
        default_source_ != kInvalidVertex)
      params.set("source", default_source_);
    // Overload policy: past the queue-depth watermark, clamp the iteration
    // cap of iterative algorithms — degrade accuracy before availability.
    if (cfg_.overload.queue_watermark > 0 && cfg_.overload.max_iterations > 0 &&
        depth_at_start > cfg_.overload.queue_watermark) {
      for (const char* key : kIterationKeys) {
        const algorithms::ParamSpec* spec = desc->schema.find(key);
        if (spec == nullptr) continue;
        std::int64_t requested = cfg_.overload.max_iterations + 1;
        if (params.has(key)) {
          requested = params.get_int(key);
        } else if (spec->default_value.has_value()) {
          requested = std::get<std::int64_t>(*spec->default_value);
        }
        if (requested > cfg_.overload.max_iterations) {
          params.set(key, cfg_.overload.max_iterations);
          r.degraded = true;
        }
      }
    }
    // run() resolves the schema first: unknown keys, wrong types and
    // out-of-range values (including the source, for *every* source-taking
    // algorithm) throw here and surface as r.error below.
    r.value = desc->run(eng, params);
    r.iterations_done = eng.sweeps_done();
  } catch (const sys::Cancelled& c) {
    // Must precede the std::exception handler (Cancelled derives from
    // runtime_error): a stopped query is a status, not an error class.
    r.value = algorithms::AnyResult{};
    r.status = status_of(c.why());
    r.error = c.what();
    r.iterations_done = eng.sweeps_done();
  } catch (const std::bad_alloc&) {
    r.value = algorithms::AnyResult{};
    r.status = QueryStatus::kError;
    r.error = "allocation failure during query execution";
  } catch (const std::exception& e) {
    r.value = algorithms::AnyResult{};
    r.status = QueryStatus::kError;
    r.error = e.what();
  } catch (...) {
    r.value = algorithms::AnyResult{};
    r.status = QueryStatus::kError;
    r.error = "unknown error";
  }
  r.seconds = timer.seconds();
  return r;
}

void GraphService::record(const QueryResult& r) {
  std::lock_guard<std::mutex> lock(stats_m_);
  ++stats_.queries_completed;
  switch (r.status) {
    case QueryStatus::kOk: break;
    case QueryStatus::kError: ++stats_.queries_failed; break;
    case QueryStatus::kShed: ++stats_.queries_shed; break;
    case QueryStatus::kCancelled: ++stats_.queries_cancelled; break;
    case QueryStatus::kDeadlineExceeded:
      ++stats_.queries_deadline_exceeded;
      break;
  }
  if (r.degraded) ++stats_.queries_degraded;
  stats_.busy_seconds += r.seconds;
}

ServiceStats GraphService::stats() const {
  std::lock_guard<std::mutex> lock(stats_m_);
  return stats_;
}

}  // namespace grind::service
