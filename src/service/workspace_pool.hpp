// WorkspacePool: a bounded check-out / check-in pool of TraversalWorkspace
// instances for concurrent query execution over one shared immutable Graph.
//
// A TraversalWorkspace is deliberately not thread-safe (one workspace per
// running traversal loop), so shared-graph concurrency needs exactly this
// shape: N queries in flight ⇒ N workspaces in use, each thread-confined
// for the duration of its query.  The pool grows lazily — workspaces are
// created on demand up to a fixed cap, after which acquire() blocks until a
// lease is returned — so a service that never sees more than k concurrent
// queries only ever pays for k workspaces, and each workspace's internal
// buffer pools stay warm across the many queries it serves over its
// lifetime (the whole point of PR 1's zero-allocation steady state).
//
// Leases are RAII: destroying a Lease returns the workspace even when the
// query throws, so an algorithm failure can never drain the pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "engine/workspace.hpp"

namespace grind::service {

class WorkspacePool {
 public:
  /// A pool that will create at most `cap` workspaces (cap is clamped to at
  /// least 1; a zero-capacity pool could never serve a query).
  explicit WorkspacePool(std::size_t cap) : cap_(cap == 0 ? 1 : cap) {
    idle_.reserve(cap_);
  }

  WorkspacePool(const WorkspacePool&) = delete;
  WorkspacePool& operator=(const WorkspacePool&) = delete;

  /// Exclusive RAII hold on one workspace.  Movable; returns the workspace
  /// to the pool on destruction (exception-safe by construction).
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept
        : pool_(std::exchange(other.pool_, nullptr)),
          ws_(std::move(other.ws_)) {}
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = std::exchange(other.pool_, nullptr);
        ws_ = std::move(other.ws_);
      }
      return *this;
    }
    ~Lease() { release(); }

    [[nodiscard]] bool valid() const { return ws_ != nullptr; }
    [[nodiscard]] engine::TraversalWorkspace& operator*() { return *ws_; }
    [[nodiscard]] engine::TraversalWorkspace* operator->() { return ws_.get(); }
    [[nodiscard]] engine::TraversalWorkspace* get() { return ws_.get(); }

    /// Return the workspace early (idempotent).
    void release() {
      if (pool_ != nullptr && ws_ != nullptr)
        pool_->check_in(std::move(ws_));
      pool_ = nullptr;
      ws_ = nullptr;
    }

   private:
    friend class WorkspacePool;
    Lease(WorkspacePool* pool,
          std::unique_ptr<engine::TraversalWorkspace> ws)
        : pool_(pool), ws_(std::move(ws)) {}

    WorkspacePool* pool_ = nullptr;
    std::unique_ptr<engine::TraversalWorkspace> ws_;
  };

  /// Check a workspace out, blocking while all `capacity()` workspaces are
  /// leased.  Lazily creates a new workspace when none is idle but the cap
  /// has not been reached.
  [[nodiscard]] Lease acquire() {
    std::unique_lock<std::mutex> lock(m_);
    cv_.wait(lock, [&] { return !idle_.empty() || created_ < cap_; });
    return take(lock);
  }

  /// Non-blocking check-out; std::nullopt when the pool is exhausted.
  [[nodiscard]] std::optional<Lease> try_acquire() {
    std::unique_lock<std::mutex> lock(m_);
    if (idle_.empty() && created_ >= cap_) return std::nullopt;
    return take(lock);
  }

  /// Maximum number of workspaces this pool will ever create.
  [[nodiscard]] std::size_t capacity() const { return cap_; }
  /// Workspaces created so far (monotone, ≤ capacity()).
  [[nodiscard]] std::size_t created() const {
    std::lock_guard<std::mutex> lock(m_);
    return created_;
  }
  /// Idle workspaces available for immediate acquisition.
  [[nodiscard]] std::size_t available() const {
    std::lock_guard<std::mutex> lock(m_);
    return idle_.size() + (cap_ - created_);
  }
  /// Workspaces currently leased out.
  [[nodiscard]] std::size_t in_use() const {
    std::lock_guard<std::mutex> lock(m_);
    return created_ - idle_.size();
  }

 private:
  Lease take(std::unique_lock<std::mutex>&) {
    std::unique_ptr<engine::TraversalWorkspace> ws;
    if (!idle_.empty()) {
      ws = std::move(idle_.back());
      idle_.pop_back();
    } else {
      ws = std::make_unique<engine::TraversalWorkspace>();
      ++created_;
    }
    return Lease(this, std::move(ws));
  }

  void check_in(std::unique_ptr<engine::TraversalWorkspace> ws) {
    {
      std::lock_guard<std::mutex> lock(m_);
      idle_.push_back(std::move(ws));
    }
    cv_.notify_one();
  }

  mutable std::mutex m_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<engine::TraversalWorkspace>> idle_;
  std::size_t created_ = 0;
  const std::size_t cap_;
};

}  // namespace grind::service
