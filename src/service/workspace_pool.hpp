// WorkspacePool: a bounded check-out / check-in pool of TraversalWorkspace
// instances for concurrent query execution over one shared immutable Graph.
//
// A TraversalWorkspace is deliberately not thread-safe (one workspace per
// running traversal loop), so shared-graph concurrency needs exactly this
// shape: N queries in flight ⇒ N workspaces in use, each thread-confined
// for the duration of its query.  The pool grows lazily — workspaces are
// created on demand up to a fixed cap, after which acquire() blocks until a
// lease is returned — so a service that never sees more than k concurrent
// queries only ever pays for k workspaces, and each workspace's internal
// buffer pools stay warm across the many queries it serves over its
// lifetime (the whole point of PR 1's zero-allocation steady state).
//
// Leases are RAII: destroying a Lease returns the workspace even when the
// query throws, so an algorithm failure can never drain the pool.
//
// Leases are domain-preferring: acquire(domain) first looks for an idle
// workspace last used on the same NUMA domain, so a pinned service worker
// keeps getting scratch whose pages (bitmaps, push buffers, cached affine
// schedules) were faulted in by threads of its own domain.  Creating a
// fresh workspace beats stealing another domain's warm one; a foreign warm
// workspace is the last resort.  Domain kAnyDomain (-1) restores the old
// most-recently-returned behaviour.
//
// Locking contract is machine-checked (sys/thread_safety.hpp): all pool
// state is GRIND_GUARDED_BY(m_), and the untimed acquire() is the ONE
// sanctioned untimed lease wait in the tree — every caller outside this
// file must use try_acquire / try_acquire_until (grind_lint rule
// `untimed-acquire`, the PR-8 bug class).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <optional>
#include <utility>
#include <vector>

#include "engine/workspace.hpp"
#include "sys/fault.hpp"
#include "sys/thread_safety.hpp"

namespace grind::service {

class WorkspacePool {
 public:
  /// acquire() domain argument meaning "no placement preference".
  static constexpr int kAnyDomain = -1;

  /// A pool that will create at most `cap` workspaces (cap is clamped to at
  /// least 1; a zero-capacity pool could never serve a query).
  explicit WorkspacePool(std::size_t cap) : cap_(cap == 0 ? 1 : cap) {
    idle_.reserve(cap_);
  }

  WorkspacePool(const WorkspacePool&) = delete;
  WorkspacePool& operator=(const WorkspacePool&) = delete;

  /// Exclusive RAII hold on one workspace.  Movable; returns the workspace
  /// to the pool on destruction (exception-safe by construction).
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept
        : pool_(std::exchange(other.pool_, nullptr)),
          ws_(std::move(other.ws_)),
          domain_(other.domain_) {}
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = std::exchange(other.pool_, nullptr);
        ws_ = std::move(other.ws_);
        domain_ = other.domain_;
      }
      return *this;
    }
    ~Lease() { release(); }

    [[nodiscard]] bool valid() const { return ws_ != nullptr; }
    [[nodiscard]] engine::TraversalWorkspace& operator*() { return *ws_; }
    [[nodiscard]] engine::TraversalWorkspace* operator->() { return ws_.get(); }
    [[nodiscard]] engine::TraversalWorkspace* get() { return ws_.get(); }
    /// Domain this lease was acquired for (kAnyDomain when unspecified);
    /// the workspace is re-tagged with it on check-in.
    [[nodiscard]] int domain() const { return domain_; }

    /// Return the workspace early (idempotent).
    void release() {
      if (pool_ != nullptr && ws_ != nullptr)
        pool_->check_in(std::move(ws_), domain_);
      pool_ = nullptr;
      ws_ = nullptr;
    }

   private:
    friend class WorkspacePool;
    Lease(WorkspacePool* pool, std::unique_ptr<engine::TraversalWorkspace> ws,
          int domain)
        : pool_(pool), ws_(std::move(ws)), domain_(domain) {}

    WorkspacePool* pool_ = nullptr;
    std::unique_ptr<engine::TraversalWorkspace> ws_;
    int domain_ = kAnyDomain;
  };

  /// Check a workspace out, blocking while all `capacity()` workspaces are
  /// leased.  Lazily creates a new workspace when none is idle but the cap
  /// has not been reached.  `domain` expresses a placement preference
  /// (typically sys preferred_domain() of a pinned worker); it never
  /// changes *whether* a workspace is obtained, only which one.
  ///
  /// This is the one sanctioned untimed wait: deadline- or timeout-carrying
  /// callers must use try_acquire_until so a starved pool can never wedge
  /// them (grind_lint enforces this outside the pool's own tests).
  [[nodiscard]] Lease acquire(int domain = kAnyDomain) GRIND_EXCLUDES(m_) {
    sys::UniqueLock lock(m_);
    while (!(closed_ || !idle_.empty() || created_ < cap_)) cv_.wait(lock);
    if (closed_) return Lease{};  // invalid: the pool is shutting down
    return take(domain);
  }

  /// Non-blocking check-out; std::nullopt when the pool is exhausted (or
  /// closed).
  [[nodiscard]] std::optional<Lease> try_acquire(int domain = kAnyDomain)
      GRIND_EXCLUDES(m_) {
    sys::UniqueLock lock(m_);
    if (closed_ || (idle_.empty() && created_ >= cap_)) return std::nullopt;
    return take(domain);
  }

  /// Timed check-out: wait at most until `deadline` for a workspace.
  /// std::nullopt on timeout or when the pool closes while waiting — so a
  /// service worker can never wedge forever on a lease.
  [[nodiscard]] std::optional<Lease> try_acquire_until(
      std::chrono::steady_clock::time_point deadline,
      int domain = kAnyDomain) GRIND_EXCLUDES(m_) {
    sys::UniqueLock lock(m_);
    while (!(closed_ || !idle_.empty() || created_ < cap_)) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        // One final re-check: the state may have become acquirable between
        // the last wakeup and the deadline passing.
        if (closed_ || !idle_.empty() || created_ < cap_) break;
        return std::nullopt;  // timed out
      }
    }
    if (closed_) return std::nullopt;
    return take(domain);
  }

  /// Poison the pool for shutdown: every blocked acquire() wakes and returns
  /// an invalid Lease, every timed wait returns std::nullopt, and future
  /// check-outs fail immediately.  Outstanding leases may still check in
  /// (their workspaces are simply retained for destruction).  Idempotent.
  void close() GRIND_EXCLUDES(m_) {
    {
      sys::MutexLock lock(m_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const GRIND_EXCLUDES(m_) {
    sys::MutexLock lock(m_);
    return closed_;
  }

  /// Maximum number of workspaces this pool will ever create.
  [[nodiscard]] std::size_t capacity() const { return cap_; }
  /// Workspaces created so far (monotone, ≤ capacity()).
  [[nodiscard]] std::size_t created() const GRIND_EXCLUDES(m_) {
    sys::MutexLock lock(m_);
    return created_;
  }
  /// Idle workspaces available for immediate acquisition.
  [[nodiscard]] std::size_t available() const GRIND_EXCLUDES(m_) {
    sys::MutexLock lock(m_);
    return idle_.size() + (cap_ - created_);
  }
  /// Workspaces currently leased out.
  [[nodiscard]] std::size_t in_use() const GRIND_EXCLUDES(m_) {
    sys::MutexLock lock(m_);
    return created_ - idle_.size();
  }
  /// Monotone count of successful check-outs over the pool's lifetime —
  /// the instrument for "this query never leased scratch" assertions
  /// (result-cache hits must not touch the pool) and serving-tier reports.
  [[nodiscard]] std::uint64_t total_leases() const GRIND_EXCLUDES(m_) {
    sys::MutexLock lock(m_);
    return leases_;
  }

 private:
  struct Idle {
    std::unique_ptr<engine::TraversalWorkspace> ws;
    int domain;  ///< domain of the lease that returned it (kAnyDomain: none)
  };

  Lease take(int domain) GRIND_REQUIRES(m_) {
    std::unique_ptr<engine::TraversalWorkspace> ws;
    if (!idle_.empty()) {
      // Preference order: (1) idle workspace warm on the requested domain
      // (most recently returned first), (2) a fresh workspace — no pages to
      // mis-inherit, (3) any idle workspace, most recently returned first.
      std::size_t pick = idle_.size();  // sentinel: none matched
      if (domain != kAnyDomain) {
        for (std::size_t i = idle_.size(); i-- > 0;) {
          if (idle_[i].domain == domain) {
            pick = i;
            break;
          }
        }
      }
      if (pick == idle_.size() && domain != kAnyDomain && created_ < cap_) {
        auto fresh = create_workspace();  // may throw: count only on success
        ++leases_;
        return Lease(this, std::move(fresh), domain);
      }
      if (pick == idle_.size()) pick = idle_.size() - 1;
      ws = std::move(idle_[pick].ws);
      idle_.erase(idle_.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      ws = create_workspace();
    }
    ++leases_;
    return Lease(this, std::move(ws), domain);
  }

  // Creation may throw (std::bad_alloc; also the "pool.workspace-alloc"
  // fault site).  created_ is incremented only after a successful create so
  // a failed creation never leaks capacity: the slot stays claimable and the
  // pool still reaches its full cap once memory pressure clears.  No notify
  // is needed on the throw path — waiters only block when created_ == cap_,
  // and this path runs only when created_ < cap_.
  std::unique_ptr<engine::TraversalWorkspace> create_workspace()
      GRIND_REQUIRES(m_) {
    if (GRIND_FAULT_FIRE("pool.workspace-alloc")) throw std::bad_alloc();
    auto ws = std::make_unique<engine::TraversalWorkspace>();
    ++created_;
    return ws;
  }

  void check_in(std::unique_ptr<engine::TraversalWorkspace> ws, int domain)
      GRIND_EXCLUDES(m_) {
    {
      sys::MutexLock lock(m_);
      idle_.push_back(Idle{std::move(ws), domain});
    }
    cv_.notify_one();
  }

  mutable sys::Mutex m_;
  sys::CondVar cv_;
  std::vector<Idle> idle_ GRIND_GUARDED_BY(m_);
  std::size_t created_ GRIND_GUARDED_BY(m_) = 0;
  std::uint64_t leases_ GRIND_GUARDED_BY(m_) = 0;
  bool closed_ GRIND_GUARDED_BY(m_) = false;
  const std::size_t cap_;
};

}  // namespace grind::service
