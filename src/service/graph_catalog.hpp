// GraphCatalog: named, refcounted, epoch-versioned graphs for one service.
//
// The paper's serving regime amortises one partitioned read-only structure
// over many traversals; a real tier holds *several* such structures — per
// tenant, per snapshot — and queries address {graph, algorithm, params}.
// The catalog supplies that addressing layer:
//
//   * every resident graph is one immutable CatalogEntry reached through a
//     shared_ptr Handle.  A query pins the Handle for its whole lifetime,
//     so eviction can never yield use-after-evict: evict() unlinks the name
//     immediately (new lookups miss) and the entry's memory is freed when
//     the last in-flight query drops its pin — "refuse or defer", never
//     invalidate;
//   * entries carry an epoch drawn from one catalog-global monotone
//     counter.  Replacing a name (reload) or bump_epoch() installs a new
//     entry with a strictly larger epoch; an epoch value is never reused,
//     even across evict + reload, which is what lets the result cache key
//     on (name, epoch) and treat every stale entry as unreachable garbage
//     instead of a correctness hazard;
//   * the per-graph default source (max-out-degree vertex, original-ID
//     space) is resolved once at load — the service must never consult a
//     single shared default across graphs, and queries must never be the
//     first to compute state reachable from a shared structure;
//   * residency is tracked against an optional byte budget, in the
//     bounded-budget spirit of the trillion-edge partitioning line of work
//     (PAPERS.md): load() refuses (throws) when the estimate would exceed
//     the budget.  Deferred evictions keep their bytes accounted until the
//     last pin drops — the memory genuinely is still resident.
//
// All methods are thread-safe; Handles are freely shareable across threads
// (the underlying Graph is strictly read-only).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "sys/thread_safety.hpp"
#include "sys/types.hpp"

namespace grind::service {

class GraphCatalog {
 public:
  struct Config {
    /// Upper bound on resident graph bytes (estimate); 0 = unbounded.
    std::size_t byte_budget = 0;
  };

  /// One immutable resident graph.  Reached only through Handles; destroyed
  /// when the catalog has unlinked it AND the last query pin dropped.
  class Entry {
   public:
    [[nodiscard]] const graph::Graph& graph() const { return *graph_; }
    [[nodiscard]] const std::string& name() const { return name_; }
    /// Catalog-global monotone version; never reused across reloads.
    [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
    /// Estimated resident bytes (layouts + retained edge list).
    [[nodiscard]] std::size_t bytes() const { return bytes_; }
    /// Per-graph default for source-taking algorithms (original-ID space);
    /// kInvalidVertex for an empty graph.
    [[nodiscard]] vid_t default_source() const { return default_source_; }

   private:
    friend class GraphCatalog;
    Entry(std::string name, std::uint64_t epoch,
          std::shared_ptr<const graph::Graph> g, std::size_t bytes,
          vid_t default_source)
        : name_(std::move(name)),
          epoch_(epoch),
          graph_(std::move(g)),
          bytes_(bytes),
          default_source_(default_source) {}

    std::string name_;
    std::uint64_t epoch_;
    std::shared_ptr<const graph::Graph> graph_;
    std::size_t bytes_;
    vid_t default_source_;
  };

  using Handle = std::shared_ptr<const Entry>;

  enum class EvictOutcome {
    kEvicted,   ///< unlinked and freed (no query held a pin)
    kDeferred,  ///< unlinked; memory freed when the last in-flight pin drops
    kNotFound,
  };

  /// One row of list(): a snapshot, not a live view.
  struct Info {
    std::string name;
    std::uint64_t epoch = 0;
    std::size_t bytes = 0;
    /// Query pins outstanding right now (excludes the catalog's own).
    std::size_t pins = 0;
    vid_t num_vertices = 0;
    eid_t num_edges = 0;
  };

  GraphCatalog() = default;
  explicit GraphCatalog(Config cfg) : cfg_(cfg) {}

  GraphCatalog(const GraphCatalog&) = delete;
  GraphCatalog& operator=(const GraphCatalog&) = delete;

  /// Insert or replace `name` (replacement = new entry, strictly larger
  /// epoch; in-flight queries keep the old entry pinned).  Throws
  /// std::invalid_argument on an empty name, std::runtime_error when the
  /// byte budget would be exceeded.  Returns the new entry's handle.
  Handle load(const std::string& name, graph::Graph g);

  /// Unlink `name`.  Never invalidates outstanding Handles — see
  /// EvictOutcome.
  EvictOutcome evict(const std::string& name);

  /// nullptr when no graph has this name.
  [[nodiscard]] Handle find(const std::string& name) const;

  /// Install a new entry for `name` sharing the same Graph but a strictly
  /// larger epoch — the "underlying data changed, invalidate cached
  /// results" signal (result-cache entries keyed on the old epoch become
  /// unreachable).  Returns the new epoch, or 0 when the name is unknown.
  std::uint64_t bump_epoch(const std::string& name);

  /// Snapshot of all resident entries, sorted by name.
  [[nodiscard]] std::vector<Info> list() const;

  /// Estimated bytes of every live graph, including deferred evictions
  /// whose last pin has not dropped yet.
  [[nodiscard]] std::size_t resident_bytes() const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t byte_budget() const { return cfg_.byte_budget; }

 private:
  /// Byte accounting shared with the graph deleters so a deferred
  /// eviction's bytes are released whenever the last pin drops — which may
  /// be after the catalog itself is gone.
  struct Ledger {
    sys::Mutex m;
    std::size_t bytes GRIND_GUARDED_BY(m) = 0;
  };

  Config cfg_{};
  std::shared_ptr<Ledger> ledger_ = std::make_shared<Ledger>();
  mutable sys::Mutex m_;
  std::uint64_t next_epoch_ GRIND_GUARDED_BY(m_) = 0;
  // Small; linear scan by name.
  std::vector<Handle> entries_ GRIND_GUARDED_BY(m_);
};

}  // namespace grind::service
