// ResultCache: bounded LRU of algorithm results, keyed by graph epoch.
//
// The serving regime the paper implies — many queries over few read-only
// structures — makes repeated identical queries the common case, and every
// current workload is registered `deterministic` (a pure function of
// (graph, params); BP included, because its priors derive from the
// fingerprinted `prior_seed`).  So a result computed once can be handed to
// every identical query until the graph changes.
//
// The key is (graph name, graph epoch, algorithm, canonical fingerprint of
// the *schema-resolved* Params):
//   * schema-resolved — defaults are filled and the service's per-graph
//     default source is substituted before fingerprinting, so "PR" and
//     "PR iterations=10" (the default) hit the same entry;
//   * epoch — GraphCatalog epochs are monotone and never reused, so a
//     reload or bump_epoch makes every stale entry unreachable.  Stale
//     entries need no eager sweep: they age out of the LRU like any other
//     cold key (purge_graph exists for the explicit-evict path, to return
//     the memory immediately);
//   * values are AnyResults, whose payload is shared and immutable — a hit
//     is a refcount bump returning the *same* object the populating run
//     produced, bit-identical by construction.
//
// The cache is consulted only for descriptors with caps.deterministic, and
// only fully-successful undegraded runs are inserted (GraphService owns
// both rules).  All methods are thread-safe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "algorithms/registry.hpp"
#include "sys/thread_safety.hpp"

namespace grind::service {

class ResultCache {
 public:
  struct Config {
    /// Maximum cached results; 0 disables the cache (every probe misses
    /// without counting, every insert is dropped).
    std::size_t capacity = 0;
  };

  struct Key {
    std::string graph;
    std::uint64_t epoch = 0;
    std::string algorithm;
    std::string fingerprint;  ///< algorithms::canonical_fingerprint output
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /// Capacity evictions only; purge_graph drops are not "pressure".
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
  };

  ResultCache() = default;
  explicit ResultCache(Config cfg) : cfg_(cfg) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  [[nodiscard]] bool enabled() const { return cfg_.capacity > 0; }

  /// Probe (and touch) the entry for `key`; counts a hit or a miss.
  /// Disabled caches return nullopt without counting.
  [[nodiscard]] std::optional<algorithms::AnyResult> get(const Key& key);

  /// Insert or refresh; evicts the least-recently-used entry past capacity.
  void put(const Key& key, algorithms::AnyResult value);

  /// Drop every entry for `name` (all epochs) — the explicit graph-evict
  /// path, where waiting for LRU aging would pin dead result vectors.
  /// Returns the number of entries dropped.
  std::size_t purge_graph(const std::string& name);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return cfg_.capacity; }

 private:
  struct Node {
    std::string graph;    // for purge_graph
    std::string encoded;  // full key, for map erasure from the LRU side
    algorithms::AnyResult value;
  };
  using Lru = std::list<Node>;

  static std::string encode(const Key& key);

  Config cfg_{};
  mutable sys::Mutex m_;
  Lru lru_ GRIND_GUARDED_BY(m_);  // front = most recently used
  std::unordered_map<std::string, Lru::iterator> index_ GRIND_GUARDED_BY(m_);
  std::uint64_t hits_ GRIND_GUARDED_BY(m_) = 0;
  std::uint64_t misses_ GRIND_GUARDED_BY(m_) = 0;
  std::uint64_t evictions_ GRIND_GUARDED_BY(m_) = 0;
};

}  // namespace grind::service
