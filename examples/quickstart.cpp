// Quickstart: the smallest end-to-end use of the library.
//
//   1. obtain an edge list (here: a generated scale-free graph; pass a path
//      to a SNAP edge-list file to use real data),
//   2. build the composite multi-layout graph,
//   3. run an algorithm through the auto-tuning engine,
//   4. inspect results and the engine's traversal statistics.
//
// Usage: quickstart [edge-list.txt]
#include <algorithm>
#include <iostream>
#include <numeric>

#include "algorithms/pagerank.hpp"
#include "engine/engine.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"

int main(int argc, char** argv) {
  using namespace grind;

  // 1. Edge list: load if a path was given, otherwise generate.
  graph::EdgeList edges = argc > 1 ? graph::load_snap(argv[1])
                                   : graph::rmat(/*scale=*/16,
                                                 /*edge_factor=*/16,
                                                 /*seed=*/42);
  std::cout << "graph: " << edges.num_vertices() << " vertices, "
            << edges.num_edges() << " edges\n";

  // 2. Composite graph: whole CSR + whole CSC + partitioned COO.  Defaults
  //    reproduce the paper's configuration (partition by destination,
  //    384 partitions, 64-vertex aligned boundaries).
  const graph::Graph g = graph::Graph::build(std::move(edges));
  std::cout << "partitions: " << g.partitioning_edges().num_partitions()
            << "\n";

  // 3. Run PageRank.  The engine picks sparse/medium/dense kernels per
  //    round via the paper's Algorithm 2; no direction flag needed.
  engine::Engine eng(g);
  const auto result = algorithms::pagerank(eng, {.iterations = 10});

  // 4. Report: top-5 ranked vertices plus what the engine actually did.
  std::vector<vid_t> order(g.num_vertices());
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](vid_t a, vid_t b) {
                      return result.rank[a] > result.rank[b];
                    });
  std::cout << "top-5 PageRank vertices:\n";
  for (int i = 0; i < 5; ++i)
    std::cout << "  #" << i + 1 << "  vertex " << order[i] << "  rank "
              << result.rank[order[i]] << "\n";
  std::cout << eng.stats_report();
  return 0;
}
