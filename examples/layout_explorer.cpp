// Layout explorer — the paper's core experiment as an interactive tool:
// run one algorithm over every layout forcing and partition count and watch
// where the crossovers fall on *your* graph.
//
// Usage: layout_explorer [algorithm] [rmat_scale]
//   algorithm ∈ {BC, CC, PR, BFS, PRDelta, SPMV, BF, BP}   (default PRDelta)
//   rmat_scale: log2 of the vertex count                    (default 16)
#include <iostream>
#include <string>

#include "algorithms/bc.hpp"
#include "algorithms/belief_propagation.hpp"
#include "algorithms/bellman_ford.hpp"
#include "algorithms/bfs.hpp"
#include "algorithms/cc.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/pagerank_delta.hpp"
#include "algorithms/spmv.hpp"
#include "engine/engine.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "sys/table.hpp"
#include "sys/timer.hpp"

using namespace grind;

namespace {

double run_once(const std::string& code, engine::Engine& eng, vid_t source) {
  Timer t;
  if (code == "BC") {
    algorithms::betweenness_centrality(eng, source);
  } else if (code == "CC") {
    algorithms::connected_components(eng);
  } else if (code == "PR") {
    algorithms::pagerank(eng);
  } else if (code == "BFS") {
    algorithms::bfs(eng, source);
  } else if (code == "PRDelta") {
    algorithms::pagerank_delta(eng);
  } else if (code == "SPMV") {
    algorithms::spmv(eng);
  } else if (code == "BF") {
    algorithms::bellman_ford(eng, source);
  } else if (code == "BP") {
    algorithms::belief_propagation(eng);
  } else {
    throw std::invalid_argument("unknown algorithm: " + code);
  }
  return t.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string code = argc > 1 ? argv[1] : "PRDelta";
  const int scale = argc > 2 ? std::stoi(argv[2]) : 16;

  const auto el = graph::rmat(scale, 16, 1);
  std::cout << "exploring " << code << " on an RMAT graph with "
            << el.num_vertices() << " vertices / " << el.num_edges()
            << " edges\n\n";

  Table t("execution time [s] by layout forcing and partition count");
  t.header({"Partitions", "auto (Alg 2)", "CSC backward", "COO dense",
            "CSR partitioned"});
  for (pid_t parts : {4u, 16u, 64u, 256u}) {
    graph::BuildOptions b;
    b.num_partitions = parts;
    b.build_partitioned_csr = true;
    const graph::Graph g = graph::Graph::build(graph::EdgeList(el), b);
    const vid_t source = 0;

    std::vector<std::string> row = {std::to_string(parts)};
    for (engine::Layout layout :
         {engine::Layout::kAuto, engine::Layout::kBackwardCsc,
          engine::Layout::kDenseCoo, engine::Layout::kPartitionedCsr}) {
      engine::Options opts;
      opts.layout = layout;
      engine::Engine eng(g, opts);
      run_once(code, eng, source);  // warmup
      row.push_back(Table::num(run_once(code, eng, source), 4));
    }
    t.row(row);
  }
  std::cout << t
            << "\n'auto' should track the best forced layout — that is "
               "Algorithm 2's job.\n";
  return 0;
}
