// Road-network routing — the paper's "hard" workload regime (USAroad):
// a huge-diameter, low-degree graph where frontier-driven algorithms spend
// most rounds sparse.  Computes shortest paths with Bellman-Ford, checks
// them against hop counts from BFS, and reconstructs one route.
#include <iostream>
#include <vector>

#include "algorithms/bellman_ford.hpp"
#include "algorithms/bfs.hpp"
#include "engine/engine.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "sys/timer.hpp"

int main() {
  using namespace grind;

  const vid_t rows = 256, cols = 256;
  const graph::Graph g = graph::Graph::build(
      graph::road_lattice(rows, cols, /*shortcut_fraction=*/0.05,
                          /*seed=*/7));
  std::cout << "road network: " << g.num_vertices() << " junctions, "
            << g.num_edges() << " road segments\n";

  const vid_t origin = 0;                        // north-west corner
  const vid_t dest = rows * cols - 1;            // south-east corner

  engine::Engine eng(g);
  Timer t;
  const auto sssp = algorithms::bellman_ford(eng, origin);
  std::cout << "Bellman-Ford: " << sssp.rounds << " rounds, " << t.millis()
            << " ms; travel cost to far corner = " << sssp.dist[dest] << "\n";

  t.reset();
  const auto hops = algorithms::bfs(eng, origin);
  std::cout << "BFS: " << hops.rounds << " rounds, " << t.millis()
            << " ms; hop count to far corner = " << hops.level[dest] << "\n";

  // Route reconstruction: walk back from the destination, at each junction
  // choosing an in-neighbour on a shortest path (dist[p] + w == dist[v]).
  std::vector<vid_t> route;
  vid_t v = dest;
  while (v != origin && route.size() <= g.num_vertices()) {
    route.push_back(v);
    const auto preds = g.csc().neighbors(v);
    const auto ws = g.csc().weights(v);
    vid_t next = kInvalidVertex;
    for (std::size_t i = 0; i < preds.size(); ++i) {
      if (std::abs(sssp.dist[preds[i]] + static_cast<double>(ws[i]) -
                   sssp.dist[v]) < 1e-9) {
        next = preds[i];
        break;
      }
    }
    if (next == kInvalidVertex) break;  // unreachable (cannot happen here)
    v = next;
  }
  route.push_back(origin);
  std::cout << "reconstructed route: " << route.size() << " junctions ("
            << "first hops: ";
  for (std::size_t i = route.size(); i-- > route.size() - 4 && i > 0;)
    std::cout << route[i] << " ";
  std::cout << "...)\n";

  // Sanity: a route can never be shorter than the hop count.
  if (static_cast<std::int64_t>(route.size()) - 1 < hops.level[dest]) {
    std::cerr << "route shorter than hop distance — impossible!\n";
    return 1;
  }
  std::cout << "route is consistent with BFS hop distance.\n";
  return 0;
}
