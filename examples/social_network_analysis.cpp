// Social-network analysis — the workload family the paper's introduction
// motivates: on a scale-free "follower" graph, find communities (connected
// components), influencers (PageRank via delta updates), and brokers
// (betweenness from a seed), all through one engine instance.
#include <algorithm>
#include <iostream>
#include <map>
#include <numeric>

#include "algorithms/bc.hpp"
#include "algorithms/cc.hpp"
#include "algorithms/pagerank_delta.hpp"
#include "engine/engine.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "sys/timer.hpp"

int main() {
  using namespace grind;

  // A follower-style graph: directed, heavy-tailed.  Symmetrised copy used
  // for community detection (communities ignore edge direction).
  graph::EdgeList followers = graph::rmat(17, 16, 2024);
  std::cout << "social graph: " << followers.num_vertices() << " users, "
            << followers.num_edges() << " follow edges\n\n";

  graph::EdgeList undirected = followers;
  undirected.symmetrize();
  const graph::Graph g_sym = graph::Graph::build(std::move(undirected));
  const graph::Graph g_dir = graph::Graph::build(std::move(followers));

  // Communities --------------------------------------------------------
  {
    engine::Engine eng(g_sym);
    Timer t;
    const auto cc = algorithms::connected_components(eng);
    std::map<vid_t, std::size_t> sizes;
    for (vid_t v = 0; v < g_sym.num_vertices(); ++v) ++sizes[cc.labels[v]];
    std::size_t largest = 0;
    for (const auto& [label, size] : sizes) largest = std::max(largest, size);
    std::cout << "communities: " << cc.num_components << " (largest holds "
              << largest << " users, " << cc.rounds << " rounds, "
              << t.millis() << " ms)\n";
  }

  // Influencers ----------------------------------------------------------
  vid_t top_influencer = 0;
  {
    engine::Engine eng(g_dir);
    Timer t;
    const auto pr = algorithms::pagerank_delta(eng);
    std::vector<vid_t> order(g_dir.num_vertices());
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(order.begin(), order.begin() + 3, order.end(),
                      [&](vid_t a, vid_t b) { return pr.rank[a] > pr.rank[b]; });
    top_influencer = order[0];
    std::cout << "influencers (PRDelta, " << pr.rounds << " rounds: "
              << pr.dense_rounds << " dense / " << pr.medium_rounds
              << " medium / " << pr.sparse_rounds << " sparse, " << t.millis()
              << " ms):\n";
    for (int i = 0; i < 3; ++i)
      std::cout << "  user " << order[i] << "  score " << pr.rank[order[i]]
                << "\n";
  }

  // Brokers --------------------------------------------------------------
  {
    engine::Engine eng(g_dir);
    Timer t;
    const auto bc = algorithms::betweenness_centrality(eng, top_influencer);
    vid_t broker = top_influencer == 0 ? 1 : 0;
    for (vid_t v = 0; v < g_dir.num_vertices(); ++v)
      if (v != top_influencer && bc.dependency[v] > bc.dependency[broker])
        broker = v;
    std::cout << "top broker for information from user " << top_influencer
              << ": user " << broker << " (dependency "
              << bc.dependency[broker] << ", " << t.millis() << " ms)\n";
  }
  return 0;
}
